// Golden-run determinism: a seeded multi-ISP scenario with loss, failures
// and multihomed hosts must reproduce bit-identical Internet counters and
// delivery timestamps across core changes. The expected values below were
// recorded from the pre-pool simulator core (std::function event queue,
// std::any payloads, per-send route copies); the pooled core must match them
// exactly — that is the (time, seq) determinism contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "net/internet.hpp"
#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "overlay/sharded.hpp"
#include "sim/random.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "topo/backbones.hpp"
#include "topo/partition.hpp"

namespace son {
namespace {

using namespace son::sim::literals;

struct GoldenResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_total = 0;
  std::uint64_t delivery_hash = 0;  // FNV-1a over (packet id, delivery time)
  std::int64_t last_delivery_ns = 0;
};

/// `cache_buckets` != 0 perturbs the route cache's hash-table layout: an
/// up-front rehash plus a second rehash mid-run (t = 2s, between the failure
/// bursts). Results must be bit-identical for ANY value — nothing in a
/// result path may observe unordered-container iteration order (the same
/// contract son-lint's unordered-iter rule enforces statically).
GoldenResult run_golden_scenario(std::size_t cache_buckets = 0) {
  sim::Simulator sim;
  net::Internet::Config cfg;
  cfg.convergence_delay = sim::Duration::seconds(1);
  net::Internet net{sim, sim::Rng{0xC0FFEE}, cfg};
  if (cache_buckets != 0) {
    net.rehash_route_cache(cache_buckets);
    sim.schedule_at(sim::TimePoint::zero() + 2_s,
                    [&]() { net.rehash_route_cache(cache_buckets * 4); });
  }

  topo::DualIspOptions opts;
  opts.backbone_loss = 0.02;
  opts.skip_in_isp_a = {2, 11};
  opts.skip_in_isp_b = {4, 7};
  opts.peering_cities = {0, 7};
  const auto u = topo::build_dual_isp(net, topo::continental_us(), opts);

  GoldenResult r;
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const auto h : u.hosts) {
    net.bind(h, [&](const net::Datagram& d) {
      mix(d.id);
      mix(static_cast<std::uint64_t>(sim.now().ns()));
      r.last_delivery_ns = sim.now().ns();
    });
  }

  // Six CBR flows across the map, 1400-byte packets every 3 ms.
  struct Flow {
    net::Internet& net;
    net::HostId src, dst;
    sim::TimePoint stop;
    void tick() {
      if (net.simulator().now() >= stop) return;
      net::Datagram d;
      d.src = src;
      d.dst = dst;
      d.dst_port = 7;
      d.size_bytes = 1400;
      net.send(std::move(d));
      net.simulator().schedule(3_ms, [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<Flow>> flows;
  const std::size_t n = u.hosts.size();
  for (std::size_t i = 0; i < 6; ++i) {
    flows.push_back(std::make_unique<Flow>(
        Flow{net, u.hosts[i], u.hosts[(i + n / 2) % n], sim::TimePoint::zero() + 5_s}));
    sim.schedule(sim::Duration::microseconds(137 * (i + 1)),
                 [f = flows.back().get()]() { f->tick(); });
  }

  // Failure schedule: single failures, a simultaneous multi-failure burst
  // (exercising convergence coalescing), and a repair.
  sim.schedule_at(sim::TimePoint::zero() + 500_ms,
                  [&]() { net.set_link_up(u.links_a[0], false); });
  sim.schedule_at(sim::TimePoint::zero() + 1200_ms,
                  [&]() { net.set_router_up(u.routers_b[3], false); });
  sim.schedule_at(sim::TimePoint::zero() + 1500_ms, [&]() {
    net.set_link_up(u.links_a[5], false);
    net.set_link_up(u.links_a[8], false);
    net.set_link_up(u.links_b[9], false);
  });
  sim.schedule_at(sim::TimePoint::zero() + 2500_ms,
                  [&]() { net.set_link_up(u.links_a[0], true); });

  sim.run();

  const auto& c = net.counters();
  r.sent = c.sent;
  r.delivered = c.delivered;
  for (const auto d : c.dropped) r.dropped_total += d;
  r.delivery_hash = hash;
  return r;
}

TEST(GoldenRun, SeededScenarioMatchesRecordedBaseline) {
  const GoldenResult r = run_golden_scenario();
  EXPECT_EQ(r.sent, 10002u);
  EXPECT_EQ(r.delivered, 8527u);
  EXPECT_EQ(r.dropped_total, 1475u);
  EXPECT_EQ(r.delivery_hash, 18392688617230050064ULL);
  EXPECT_EQ(r.last_delivery_ns, 5024211977);
}

// Runtime leg of the determinism contract: re-run the scenario in-process
// with very different hash-table geometries (tiny, huge, plus mid-run
// rehashes). Any code path that iterates an unordered container into a
// result would see different orders here and break the pinned hash.
TEST(GoldenRun, IndependentOfHashTableLayout) {
  const GoldenResult base = run_golden_scenario();
  for (const std::size_t buckets : {1ul, 7ul, 4096ul}) {
    const GoldenResult r = run_golden_scenario(buckets);
    EXPECT_EQ(r.sent, base.sent) << "buckets=" << buckets;
    EXPECT_EQ(r.delivered, base.delivered) << "buckets=" << buckets;
    EXPECT_EQ(r.dropped_total, base.dropped_total) << "buckets=" << buckets;
    EXPECT_EQ(r.delivery_hash, base.delivery_hash) << "buckets=" << buckets;
    EXPECT_EQ(r.last_delivery_ns, base.last_delivery_ns) << "buckets=" << buckets;
  }
}

// The flight recorder's inertness contract: observation is write-only.
// Running the identical scenario with a recorder (sampling every message)
// and a counter registry installed must reproduce the exact pinned baseline
// — no extra events, RNG draws, or allocation-order effects.
TEST(GoldenRun, TracingIsInert) {
  obs::Recorder rec{64, 1 << 12};
  rec.set_sample_all(true);
  obs::ScopedRecorder rscope{rec};
  obs::CounterRegistry reg;
  obs::ScopedCounterRegistry cscope{reg};

  const GoldenResult r = run_golden_scenario();
  EXPECT_EQ(r.sent, 10002u);
  EXPECT_EQ(r.delivered, 8527u);
  EXPECT_EQ(r.dropped_total, 1475u);
  EXPECT_EQ(r.delivery_hash, 18392688617230050064ULL);
  EXPECT_EQ(r.last_delivery_ns, 5024211977);
  // ...while actually observing: the underlay recorded its drops and the
  // registry mirrored the Internet counters exactly.
  EXPECT_GT(rec.total_recorded(), 0u);
  EXPECT_EQ(reg.value("net.sent"), r.sent);
  EXPECT_EQ(reg.value("net.delivered"), r.delivered);
}

TEST(GoldenRun, BackToBackRunsAreIdentical) {
  const GoldenResult a = run_golden_scenario();
  const GoldenResult b = run_golden_scenario();
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivery_hash, b.delivery_hash);
  EXPECT_EQ(a.last_delivery_ns, b.last_delivery_ns);
}

// ---- Sharded-kernel determinism contract -----------------------------------

struct ShardedGoldenResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_total = 0;
  std::uint64_t delivery_hash = 0;  // per-node FNV hashes folded in node order
  std::int64_t last_delivery_ns = 0;
  std::uint64_t cross_shard_pushes = 0;
  std::uint64_t kernel_rounds = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counter_entries;
  std::vector<obs::EventRecord> trace;
};

/// The full sharded stack on the 12-site continental map: one partition per
/// city, overlay protocol running, CBR cross-country flows, failure bursts
/// injected as global events, and full observability (recorder with one
/// system ring per partition + counter registry). `workers` MUST be a pure
/// wall-clock knob: every field of the result, down to the merged trace
/// bytes, is compared across worker counts.
ShardedGoldenResult run_sharded_scenario(unsigned workers) {
  obs::Recorder rec{16, 1 << 12, /*system_rings=*/12};
  rec.set_sample_all(true);
  obs::ScopedRecorder rscope{rec};
  obs::CounterRegistry reg;
  obs::ScopedCounterRegistry cscope{reg};

  overlay::ShardedMapOptions opts;
  opts.workers = workers;
  opts.underlay.backbone_loss = 0.01;
  opts.underlay.skip_in_isp_a = {2, 11};
  opts.underlay.skip_in_isp_b = {4, 7};
  opts.underlay.peering_cities = {0, 7};
  opts.net.convergence_delay = sim::Duration::seconds(1);
  auto fx = overlay::build_sharded_map(topo::continental_us(), opts, 0xBEEF);

  ShardedGoldenResult r;
  const std::size_t n = fx.underlay.hosts.size();
  // Per-node accumulators keep every handler partition-local; the fold below
  // runs after the kernel stops, in node order.
  std::vector<std::uint64_t> hash(n, 1469598103934665603ULL);
  std::vector<std::int64_t> last(n, 0);
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    fx.internet->bind(fx.underlay.hosts[i], 7, [&, i](const net::Datagram& d) {
      const std::int64_t t = fx.node_sim(static_cast<overlay::NodeId>(i)).now().ns();
      mix(hash[i], d.id);
      mix(hash[i], static_cast<std::uint64_t>(t));
      last[i] = t;
    });
  }

  fx.settle(3_s);
  const sim::TimePoint t0 = fx.kernel->now();

  // Six CBR flows across the map, each ticking on ITS OWN partition's
  // simulator — in a sharded run traffic sources live with their host.
  struct Flow {
    net::Internet& net;
    sim::Simulator& sim;
    net::HostId src, dst;
    sim::TimePoint stop;
    void tick() {
      if (sim.now() >= stop) return;
      net::Datagram d;
      d.src = src;
      d.dst = dst;
      d.dst_port = 7;
      d.size_bytes = 1400;
      net.send(std::move(d));
      sim.schedule(3_ms, [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < 6; ++i) {
    auto& sim = fx.node_sim(static_cast<overlay::NodeId>(i));
    flows.push_back(std::make_unique<Flow>(
        Flow{*fx.internet, sim, fx.underlay.hosts[i], fx.underlay.hosts[(i + n / 2) % n],
             t0 + 2500_ms}));
    sim.schedule_at(t0 + sim::Duration::microseconds(137 * (i + 1)),
                    [f = flows.back().get()]() { f->tick(); });
  }

  // Failures are global events: they mutate shared believed/actual topology,
  // so the kernel runs them at a barrier with all partitions quiesced.
  auto& net = *fx.internet;
  const auto& u = fx.underlay;
  fx.kernel->schedule_global(t0 + 400_ms, [&]() { net.set_link_up(u.links_a[0], false); });
  fx.kernel->schedule_global(t0 + 1000_ms, [&]() {
    net.set_link_up(u.links_a[5], false);
    net.set_link_up(u.links_a[8], false);
    net.set_link_up(u.links_b[9], false);
  });
  fx.kernel->schedule_global(t0 + 1600_ms, [&]() { net.set_link_up(u.links_a[0], true); });

  fx.kernel->run_until(t0 + 3_s);

  const auto& c = net.counters();
  r.sent = c.sent;
  r.delivered = c.delivered;
  for (const auto d : c.dropped) r.dropped_total += d;
  std::uint64_t folded = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    mix(folded, hash[i]);
    if (last[i] > r.last_delivery_ns) r.last_delivery_ns = last[i];
  }
  r.delivery_hash = folded;
  for (std::uint32_t p = 0; p < 12; ++p) {
    for (std::uint32_t q = 0; q < 12; ++q) {
      if (const sim::ShardChannel* ch = fx.kernel->channel(p, q)) {
        r.cross_shard_pushes += ch->total_pushed();
      }
    }
  }
  r.kernel_rounds = fx.kernel->rounds();
  r.counter_entries = reg.entries();
  r.trace = rec.merged();
  return r;
}

TEST(GoldenRun, ShardedOneWorkerEqualsFour) {
  const ShardedGoldenResult one = run_sharded_scenario(1);
  const ShardedGoldenResult four = run_sharded_scenario(4);

  // Loose sanity on the scenario itself: real traffic, real parallel
  // structure, real drops.
  EXPECT_GT(one.sent, 1000u);
  EXPECT_GT(one.delivered, 0u);
  EXPECT_GT(one.dropped_total, 0u);
  EXPECT_GT(one.cross_shard_pushes, 0u);
  EXPECT_GT(one.kernel_rounds, 0u);
  EXPECT_FALSE(one.trace.empty());

  // The contract: bit-identical results, stats, counters, and merged traces.
  EXPECT_EQ(four.sent, one.sent);
  EXPECT_EQ(four.delivered, one.delivered);
  EXPECT_EQ(four.dropped_total, one.dropped_total);
  EXPECT_EQ(four.delivery_hash, one.delivery_hash);
  EXPECT_EQ(four.last_delivery_ns, one.last_delivery_ns);
  EXPECT_EQ(four.cross_shard_pushes, one.cross_shard_pushes);
  EXPECT_EQ(four.kernel_rounds, one.kernel_rounds);
  EXPECT_EQ(four.counter_entries, one.counter_entries);
  ASSERT_EQ(four.trace.size(), one.trace.size());
  EXPECT_EQ(std::memcmp(four.trace.data(), one.trace.data(),
                        one.trace.size() * sizeof(obs::EventRecord)),
            0);
}

// Back-to-back threaded runs in one process: no hidden state (TLS, pool
// reuse, ring contents) leaks between kernel lifetimes.
TEST(GoldenRun, ShardedRunIsRepeatable) {
  const ShardedGoldenResult a = run_sharded_scenario(2);
  const ShardedGoldenResult b = run_sharded_scenario(2);
  EXPECT_EQ(a.delivery_hash, b.delivery_hash);
  EXPECT_EQ(a.counter_entries, b.counter_entries);
}

// ---- Intrusion-tolerant crypto fast-path contract ---------------------------

/// An AUTHENTICATED sharded overlay scenario: per-hop HMAC on IT data frames
/// and on the signed control plane (hellos, LSAs, GSAs), overlay client
/// flows on IT-Priority and IT-Reliable, observability on. Used to pin that
/// the crypto fast path (midstate MacContexts, two-span streaming,
/// flood-suffix cache) changes no observable byte vs the seed-path ablation
/// knob, and stays a pure wall-clock knob across worker counts.
ShardedGoldenResult run_it_auth_scenario(unsigned workers, bool midstate) {
  obs::Recorder rec{16, 1 << 12, /*system_rings=*/12};
  rec.set_sample_all(true);
  obs::ScopedRecorder rscope{rec};
  obs::CounterRegistry reg;
  obs::ScopedCounterRegistry cscope{reg};

  overlay::ShardedMapOptions opts;
  opts.workers = workers;
  opts.underlay.backbone_loss = 0.01;
  opts.net.convergence_delay = sim::Duration::seconds(1);
  opts.node.authenticate = true;
  opts.node.master_key[2] = 0x5A;
  opts.node.master_key[30] = 0xC3;
  opts.node.crypto_midstate = midstate;
  auto fx = overlay::build_sharded_map(topo::continental_us(), opts, 0xF00D);

  ShardedGoldenResult r;
  const std::size_t n = fx.underlay.hosts.size();
  std::vector<std::uint64_t> hash(n, 1469598103934665603ULL);
  std::vector<std::int64_t> last(n, 0);
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  // IT overlay flows terminate at overlay clients; each handler runs on its
  // destination node's partition and folds into that node's accumulator.
  for (std::size_t i = 0; i < n; ++i) {
    auto& ep = fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(200);
    ep.set_handler([&, i](const overlay::Message& m, sim::Duration lat) {
      mix(hash[i], m.hdr.origin_id);
      mix(hash[i], static_cast<std::uint64_t>(lat.ns()));
      last[i] = lat.ns();
      ++hash[i];  // distinguish identical (id, lat) repeats
    });
  }

  fx.settle(3_s);
  const sim::TimePoint t0 = fx.kernel->now();

  // Six cross-country flows, alternating IT-Priority / IT-Reliable, each
  // ticking on its source node's own partition simulator.
  struct ItFlow {
    overlay::ClientEndpoint& src;
    sim::Simulator& sim;
    overlay::Destination dest;
    overlay::ServiceSpec spec;
    sim::TimePoint stop;
    void tick() {
      if (sim.now() >= stop) return;
      src.send(dest, overlay::make_payload(300), spec);
      sim.schedule(sim::Duration::milliseconds(7), [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<ItFlow>> flows;
  for (std::size_t i = 0; i < 6; ++i) {
    auto& sim = fx.node_sim(static_cast<overlay::NodeId>(i));
    const auto dst = static_cast<overlay::NodeId>((i + n / 2) % n);
    overlay::ServiceSpec spec;
    spec.link_protocol = (i % 2 == 0) ? overlay::LinkProtocol::kITPriority
                                      : overlay::LinkProtocol::kITReliable;
    flows.push_back(std::make_unique<ItFlow>(ItFlow{
        fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(100), sim,
        overlay::Destination::unicast(dst, 200), spec, t0 + 1500_ms}));
    sim.schedule_at(t0 + sim::Duration::microseconds(211 * (i + 1)),
                    [f = flows.back().get()]() { f->tick(); });
  }

  fx.kernel->run_until(t0 + 2500_ms);

  std::uint64_t folded = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    mix(folded, hash[i]);
    if (last[i] > r.last_delivery_ns) r.last_delivery_ns = last[i];
  }
  r.delivery_hash = folded;
  for (overlay::NodeId i = 0; i < static_cast<overlay::NodeId>(n); ++i) {
    const auto& s = fx.overlay->node(i).stats();
    r.sent += s.originated;
    r.delivered += s.delivered_local;
    r.dropped_total += s.control_auth_failures;  // must stay zero: keys agree
  }
  r.kernel_rounds = fx.kernel->rounds();
  r.counter_entries = reg.entries();
  r.trace = rec.merged();
  return r;
}

// The fast path must not move a single byte: same deliveries, same latencies
// (to the nanosecond, via the delivery hash), same merged trace, same
// counters — whether tags come from cached midstates + two-span streaming or
// from the reconstructed seed path, and whatever the worker count.
TEST(GoldenRun, AuthenticatedItFastPathMatchesSeedPathAndWorkers) {
  const ShardedGoldenResult fast1 = run_it_auth_scenario(1, /*midstate=*/true);

  // Real authenticated traffic flowed and no control frame failed auth.
  EXPECT_GT(fast1.sent, 100u);
  EXPECT_GT(fast1.delivered, 0u);
  EXPECT_EQ(fast1.dropped_total, 0u);
  // The obs counters actually counted per-hop crypto work.
  std::uint64_t sign_ops = 0, verify_ops = 0;
  for (const auto& [name, value] : fast1.counter_entries) {
    if (name == "crypto.sign_ops") sign_ops = value;
    if (name == "crypto.verify_ops") verify_ops = value;
  }
  EXPECT_GT(sign_ops, 0u);
  EXPECT_GT(verify_ops, 0u);

  const ShardedGoldenResult fast4 = run_it_auth_scenario(4, /*midstate=*/true);
  EXPECT_EQ(fast4.delivery_hash, fast1.delivery_hash);
  EXPECT_EQ(fast4.last_delivery_ns, fast1.last_delivery_ns);
  EXPECT_EQ(fast4.sent, fast1.sent);
  EXPECT_EQ(fast4.delivered, fast1.delivered);
  EXPECT_EQ(fast4.counter_entries, fast1.counter_entries);
  ASSERT_EQ(fast4.trace.size(), fast1.trace.size());
  EXPECT_EQ(std::memcmp(fast4.trace.data(), fast1.trace.data(),
                        fast1.trace.size() * sizeof(obs::EventRecord)),
            0);

  const ShardedGoldenResult seed = run_it_auth_scenario(1, /*midstate=*/false);
  EXPECT_EQ(seed.delivery_hash, fast1.delivery_hash);
  EXPECT_EQ(seed.last_delivery_ns, fast1.last_delivery_ns);
  EXPECT_EQ(seed.sent, fast1.sent);
  EXPECT_EQ(seed.delivered, fast1.delivered);
  EXPECT_EQ(seed.counter_entries, fast1.counter_entries);
  ASSERT_EQ(seed.trace.size(), fast1.trace.size());
  EXPECT_EQ(std::memcmp(seed.trace.data(), fast1.trace.data(),
                        fast1.trace.size() * sizeof(obs::EventRecord)),
            0);
}

}  // namespace
}  // namespace son
