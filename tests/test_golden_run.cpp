// Golden-run determinism: a seeded multi-ISP scenario with loss, failures
// and multihomed hosts must reproduce bit-identical Internet counters and
// delivery timestamps across core changes. The expected values below were
// recorded from the pre-pool simulator core (std::function event queue,
// std::any payloads, per-send route copies); the pooled core must match them
// exactly — that is the (time, seq) determinism contract.
#include <gtest/gtest.h>

#include <cstdint>

#include "net/internet.hpp"
#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "topo/backbones.hpp"

namespace son {
namespace {

using namespace son::sim::literals;

struct GoldenResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_total = 0;
  std::uint64_t delivery_hash = 0;  // FNV-1a over (packet id, delivery time)
  std::int64_t last_delivery_ns = 0;
};

/// `cache_buckets` != 0 perturbs the route cache's hash-table layout: an
/// up-front rehash plus a second rehash mid-run (t = 2s, between the failure
/// bursts). Results must be bit-identical for ANY value — nothing in a
/// result path may observe unordered-container iteration order (the same
/// contract son-lint's unordered-iter rule enforces statically).
GoldenResult run_golden_scenario(std::size_t cache_buckets = 0) {
  sim::Simulator sim;
  net::Internet::Config cfg;
  cfg.convergence_delay = sim::Duration::seconds(1);
  net::Internet net{sim, sim::Rng{0xC0FFEE}, cfg};
  if (cache_buckets != 0) {
    net.rehash_route_cache(cache_buckets);
    sim.schedule_at(sim::TimePoint::zero() + 2_s,
                    [&]() { net.rehash_route_cache(cache_buckets * 4); });
  }

  topo::DualIspOptions opts;
  opts.backbone_loss = 0.02;
  opts.skip_in_isp_a = {2, 11};
  opts.skip_in_isp_b = {4, 7};
  opts.peering_cities = {0, 7};
  const auto u = topo::build_dual_isp(net, topo::continental_us(), opts);

  GoldenResult r;
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const auto h : u.hosts) {
    net.bind(h, [&](const net::Datagram& d) {
      mix(d.id);
      mix(static_cast<std::uint64_t>(sim.now().ns()));
      r.last_delivery_ns = sim.now().ns();
    });
  }

  // Six CBR flows across the map, 1400-byte packets every 3 ms.
  struct Flow {
    net::Internet& net;
    net::HostId src, dst;
    sim::TimePoint stop;
    void tick() {
      if (net.simulator().now() >= stop) return;
      net::Datagram d;
      d.src = src;
      d.dst = dst;
      d.dst_port = 7;
      d.size_bytes = 1400;
      net.send(std::move(d));
      net.simulator().schedule(3_ms, [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<Flow>> flows;
  const std::size_t n = u.hosts.size();
  for (std::size_t i = 0; i < 6; ++i) {
    flows.push_back(std::make_unique<Flow>(
        Flow{net, u.hosts[i], u.hosts[(i + n / 2) % n], sim::TimePoint::zero() + 5_s}));
    sim.schedule(sim::Duration::microseconds(137 * (i + 1)),
                 [f = flows.back().get()]() { f->tick(); });
  }

  // Failure schedule: single failures, a simultaneous multi-failure burst
  // (exercising convergence coalescing), and a repair.
  sim.schedule_at(sim::TimePoint::zero() + 500_ms,
                  [&]() { net.set_link_up(u.links_a[0], false); });
  sim.schedule_at(sim::TimePoint::zero() + 1200_ms,
                  [&]() { net.set_router_up(u.routers_b[3], false); });
  sim.schedule_at(sim::TimePoint::zero() + 1500_ms, [&]() {
    net.set_link_up(u.links_a[5], false);
    net.set_link_up(u.links_a[8], false);
    net.set_link_up(u.links_b[9], false);
  });
  sim.schedule_at(sim::TimePoint::zero() + 2500_ms,
                  [&]() { net.set_link_up(u.links_a[0], true); });

  sim.run();

  const auto& c = net.counters();
  r.sent = c.sent;
  r.delivered = c.delivered;
  for (const auto d : c.dropped) r.dropped_total += d;
  r.delivery_hash = hash;
  return r;
}

TEST(GoldenRun, SeededScenarioMatchesRecordedBaseline) {
  const GoldenResult r = run_golden_scenario();
  EXPECT_EQ(r.sent, 10002u);
  EXPECT_EQ(r.delivered, 8527u);
  EXPECT_EQ(r.dropped_total, 1475u);
  EXPECT_EQ(r.delivery_hash, 18392688617230050064ULL);
  EXPECT_EQ(r.last_delivery_ns, 5024211977);
}

// Runtime leg of the determinism contract: re-run the scenario in-process
// with very different hash-table geometries (tiny, huge, plus mid-run
// rehashes). Any code path that iterates an unordered container into a
// result would see different orders here and break the pinned hash.
TEST(GoldenRun, IndependentOfHashTableLayout) {
  const GoldenResult base = run_golden_scenario();
  for (const std::size_t buckets : {1ul, 7ul, 4096ul}) {
    const GoldenResult r = run_golden_scenario(buckets);
    EXPECT_EQ(r.sent, base.sent) << "buckets=" << buckets;
    EXPECT_EQ(r.delivered, base.delivered) << "buckets=" << buckets;
    EXPECT_EQ(r.dropped_total, base.dropped_total) << "buckets=" << buckets;
    EXPECT_EQ(r.delivery_hash, base.delivery_hash) << "buckets=" << buckets;
    EXPECT_EQ(r.last_delivery_ns, base.last_delivery_ns) << "buckets=" << buckets;
  }
}

// The flight recorder's inertness contract: observation is write-only.
// Running the identical scenario with a recorder (sampling every message)
// and a counter registry installed must reproduce the exact pinned baseline
// — no extra events, RNG draws, or allocation-order effects.
TEST(GoldenRun, TracingIsInert) {
  obs::Recorder rec{64, 1 << 12};
  rec.set_sample_all(true);
  obs::ScopedRecorder rscope{rec};
  obs::CounterRegistry reg;
  obs::ScopedCounterRegistry cscope{reg};

  const GoldenResult r = run_golden_scenario();
  EXPECT_EQ(r.sent, 10002u);
  EXPECT_EQ(r.delivered, 8527u);
  EXPECT_EQ(r.dropped_total, 1475u);
  EXPECT_EQ(r.delivery_hash, 18392688617230050064ULL);
  EXPECT_EQ(r.last_delivery_ns, 5024211977);
  // ...while actually observing: the underlay recorded its drops and the
  // registry mirrored the Internet counters exactly.
  EXPECT_GT(rec.total_recorded(), 0u);
  EXPECT_EQ(reg.value("net.sent"), r.sent);
  EXPECT_EQ(reg.value("net.delivered"), r.delivered);
}

TEST(GoldenRun, BackToBackRunsAreIdentical) {
  const GoldenResult a = run_golden_scenario();
  const GoldenResult b = run_golden_scenario();
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivery_hash, b.delivery_hash);
  EXPECT_EQ(a.last_delivery_ns, b.last_delivery_ns);
}

}  // namespace
}  // namespace son
