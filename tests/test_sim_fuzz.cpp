// Model-based fuzzing of the event queue: random schedule/cancel/pop
// sequences compared against a trivially-correct reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace son::sim {
namespace {

/// Reference model: a plain vector kept explicitly sorted by (time, seq).
class ReferenceQueue {
 public:
  std::uint64_t schedule(TimePoint when) {
    entries_.push_back({when, seq_++, next_id_});
    return next_id_++;
  }
  bool cancel(std::uint64_t id) {
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [id](const Entry& e) { return e.id == id; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  std::uint64_t pop() {
    const auto it = std::min_element(entries_.begin(), entries_.end(),
                                     [](const Entry& a, const Entry& b) {
                                       return std::tie(a.time, a.seq) < std::tie(b.time, b.seq);
                                     });
    const std::uint64_t id = it->id;
    entries_.erase(it);
    return id;
  }
  [[nodiscard]] TimePoint next_time() const {
    return std::min_element(entries_.begin(), entries_.end(),
                            [](const Entry& a, const Entry& b) {
                              return std::tie(a.time, a.seq) < std::tie(b.time, b.seq);
                            })
        ->time;
  }

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  std::vector<Entry> entries_;
  std::uint64_t seq_ = 0;
  std::uint64_t next_id_ = 1;
};

TEST(EventQueueFuzz, MatchesReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng{seed};
    EventQueue q;
    ReferenceQueue ref;
    // Track fired ids from the real queue via callback capture.
    std::vector<std::uint64_t> live_ids;  // ids believed pending (may be stale)
    std::map<EventId, std::uint64_t> id_map;  // real id -> ref id

    for (int step = 0; step < 3000; ++step) {
      const double dice = rng.uniform();
      if (dice < 0.5) {
        // Schedule at a random time (duplicates encouraged).
        const auto when = TimePoint::from_ns(rng.uniform_int(0, 50) * 1000);
        const EventId real = q.schedule(when, []() {});
        const std::uint64_t mirror = ref.schedule(when);
        id_map[real] = mirror;
        live_ids.push_back(real);
      } else if (dice < 0.75 && !live_ids.empty()) {
        // Cancel a random remembered id (possibly already fired/cancelled).
        const std::size_t pick = rng.index(live_ids.size());
        const EventId victim = live_ids[pick];
        const bool did = q.cancel(victim);
        const bool ref_did = ref.cancel(id_map[victim]);
        ASSERT_EQ(did, ref_did) << "cancel divergence at step " << step;
      } else if (!q.empty()) {
        ASSERT_FALSE(ref.empty());
        ASSERT_EQ(q.next_time(), ref.next_time()) << "next_time at step " << step;
        const auto fired = q.pop();
        const std::uint64_t ref_id = ref.pop();
        (void)fired;
        (void)ref_id;
      }
      ASSERT_EQ(q.size(), ref.size()) << "size divergence at step " << step;
      ASSERT_EQ(q.empty(), ref.empty());
    }
    // Drain both and compare complete pop order.
    while (!q.empty()) {
      ASSERT_EQ(q.next_time(), ref.next_time());
      q.pop();
      ref.pop();
    }
    ASSERT_TRUE(ref.empty());
  }
}

}  // namespace
}  // namespace son::sim
