#include "topo/designer.hpp"

#include "overlay/network.hpp"

#include <gtest/gtest.h>

#include "topo/backbones.hpp"

namespace son::topo {
namespace {

using namespace son::sim::literals;

// ---- Graph-side primitives the designer relies on ---------------------------

TEST(Biconnectivity, CycleIsBiconnected) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 0, 1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_biconnected(g));
  EXPECT_TRUE(articulation_points(g).empty());
}

TEST(Biconnectivity, PathHasInteriorCutVertices) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_biconnected(g));
  EXPECT_EQ(articulation_points(g), (std::vector<NodeIndex>{1, 2}));
}

TEST(Biconnectivity, BridgeNodeBetweenTwoCycles) {
  // Two triangles sharing node 2: node 2 is the articulation point.
  Graph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 0, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 2, 1);
  EXPECT_EQ(articulation_points(g), (std::vector<NodeIndex>{2}));
}

TEST(Biconnectivity, DisconnectedGraphDetected) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_FALSE(is_connected(g));
  EXPECT_FALSE(is_biconnected(g));
}

TEST(Biconnectivity, KnownMapsAreBiconnected) {
  EXPECT_TRUE(is_biconnected(overlay_graph(continental_us())));
  EXPECT_TRUE(is_biconnected(overlay_graph(global_sites())));
}

// ---- The designer itself ----------------------------------------------------

TEST(Designer, UsCitiesProduceValidTopology) {
  const auto cities = continental_us().cities;
  DesignOptions opts;
  const auto result = design_overlay(cities, opts);
  ASSERT_TRUE(result.has_value());

  // Every designed link respects the short-link rule.
  for (std::size_t e = 0; e < result->graph.num_edges(); ++e) {
    EXPECT_LE(result->graph.edge(static_cast<EdgeIndex>(e)).weight, opts.max_link_ms);
  }
  // Resilience: biconnected, min degree 2.
  EXPECT_TRUE(is_biconnected(result->graph));
  for (NodeIndex u = 0; u < result->graph.num_nodes(); ++u) {
    EXPECT_GE(result->graph.neighbors(u).size(), 2u);
  }
  // Latency: bounded stretch vs the dense candidate graph.
  EXPECT_LE(result->achieved_stretch, opts.max_stretch + 1e-9);
  // Sparsity: far from a clique, within the 64-link mask cap.
  EXPECT_LE(result->edges.size(), 64u);
  EXPECT_LT(result->edges.size(), cities.size() * (cities.size() - 1) / 4);
}

TEST(Designer, PrunesComparedToDenseCandidates) {
  const auto cities = continental_us().cities;
  DesignOptions opts;
  std::size_t dense_count = 0;
  for (NodeIndex a = 0; a < cities.size(); ++a) {
    for (NodeIndex b = static_cast<NodeIndex>(a + 1); b < cities.size(); ++b) {
      if (fiber_latency(cities[a], cities[b], opts.route_inflation).to_millis_f() <=
          opts.max_link_ms) {
        ++dense_count;
      }
    }
  }
  const auto result = design_overlay(cities, opts);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(result->edges.size(), dense_count);
}

TEST(Designer, RespectsProvidedFiberRoutes) {
  // Restrict candidates to the hand-made map's fiber: the designer can only
  // pick a subset of those routes.
  const auto map = continental_us();
  DesignOptions opts;
  const auto result = design_overlay(map.cities, opts, &map.edges);
  ASSERT_TRUE(result.has_value());
  for (const auto& [a, b] : result->edges) {
    const bool in_fiber =
        std::any_of(map.edges.begin(), map.edges.end(), [a = a, b = b](const auto& e) {
          return (e.first == a && e.second == b) || (e.first == b && e.second == a);
        });
    EXPECT_TRUE(in_fiber) << a << "-" << b;
  }
  EXPECT_TRUE(is_biconnected(result->graph));
}

TEST(Designer, ImpossibleSitesReturnNullopt) {
  // Two far-apart cities: no short link can exist, so no biconnected design.
  const std::vector<City> cities{{"NYC", 40.71, -74.01}, {"LON", 51.51, -0.13}};
  EXPECT_FALSE(design_overlay(cities, DesignOptions{}).has_value());
}

TEST(Designer, TighterStretchKeepsMoreLinks) {
  const auto cities = continental_us().cities;
  DesignOptions loose;
  loose.max_stretch = 1.6;
  DesignOptions tight;
  tight.max_stretch = 1.05;
  const auto l = design_overlay(cities, loose);
  const auto t = design_overlay(cities, tight);
  ASSERT_TRUE(l.has_value());
  ASSERT_TRUE(t.has_value());
  EXPECT_GE(t->edges.size(), l->edges.size());
  EXPECT_LE(t->achieved_stretch, 1.05 + 1e-9);
}

TEST(Designer, DesignedTopologyWorksEndToEnd) {
  // Deploy an overlay on a designer-produced topology and pass traffic.
  const auto cities = continental_us().cities;
  const auto result = design_overlay(cities, DesignOptions{});
  ASSERT_TRUE(result.has_value());

  sim::Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, result->graph, gopts, sim::Rng{33});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(9).connect(2);
  int got = 0;
  dst.set_handler([&](const overlay::Message&, sim::Duration) { ++got; });
  for (int i = 0; i < 5; ++i) {
    src.send(overlay::Destination::unicast(9, 2), overlay::make_payload(100),
             overlay::ServiceSpec{});
  }
  sim.run_for(sim::Duration::seconds(1));
  EXPECT_EQ(got, 5);
}

}  // namespace
}  // namespace son::topo
