// Test harness: two LinkProtocolEndpoints joined by a configurable lossy,
// delayed pipe — protocol logic is exercised without a full overlay node.
#pragma once

#include <functional>
#include <vector>

#include "net/loss_model.hpp"
#include "overlay/link_protocols.hpp"
#include "sim/simulator.hpp"

namespace son::test {

class FakeLinkPair {
 public:
  class Side final : public overlay::LinkContext {
   public:
    Side(FakeLinkPair& pair, overlay::NodeId self, overlay::NodeId peer)
        : pair_{pair}, self_{self}, peer_{peer} {}

    sim::Simulator& simulator() override { return pair_.sim_; }
    sim::Rng& rng() override { return pair_.rng_; }
    void send_frame(overlay::LinkFrame frame) override { pair_.transmit(self_, std::move(frame)); }
    bool deliver_up(overlay::Message msg, overlay::LinkBit) override {
      if (!admit || admit(msg)) {
        delivered.push_back(std::move(msg));
        return true;
      }
      ++refused;
      return false;
    }
    [[nodiscard]] sim::Duration rtt_estimate() const override { return pair_.one_way_ * 2; }
    [[nodiscard]] overlay::NodeId self() const override { return self_; }
    [[nodiscard]] overlay::NodeId peer() const override { return peer_; }
    [[nodiscard]] overlay::LinkBit link() const override { return 0; }
    [[nodiscard]] bool authenticate() const override { return pair_.authenticate_; }
    [[nodiscard]] const crypto::KeyTable* keys() const override {
      return self_ == 0 ? pair_.keys_a_.get() : pair_.keys_b_.get();
    }
    void count_protocol_drop(overlay::LinkProtocol) override { ++protocol_drops; }

    std::vector<overlay::Message> delivered;
    std::function<bool(const overlay::Message&)> admit;  // nullptr = admit all
    std::uint64_t refused = 0;
    std::uint64_t protocol_drops = 0;

   private:
    FakeLinkPair& pair_;
    overlay::NodeId self_;
    overlay::NodeId peer_;
  };

  FakeLinkPair(sim::Simulator& sim, sim::Duration one_way, double loss,
               std::uint64_t seed = 99, bool authenticate = false)
      : sim_{sim},
        rng_{seed},
        one_way_{one_way},
        loss_a_to_b_{net::make_bernoulli(loss)},
        loss_b_to_a_{net::make_bernoulli(loss)},
        authenticate_{authenticate},
        a_{*this, 0, 1},
        b_{*this, 1, 0} {
    if (authenticate) {
      crypto::Key master{};
      master[0] = 7;
      keys_a_ = std::make_unique<crypto::KeyTable>(master, 0, 2);
      keys_b_ = std::make_unique<crypto::KeyTable>(master, 1, 2);
    }
  }

  /// Install the endpoints after constructing them against ctx_a()/ctx_b().
  void attach(overlay::LinkProtocolEndpoint* end_a, overlay::LinkProtocolEndpoint* end_b) {
    end_a_ = end_a;
    end_b_ = end_b;
  }

  Side& ctx_a() { return a_; }
  Side& ctx_b() { return b_; }

  void set_loss_a_to_b(std::unique_ptr<net::LossModel> m) { loss_a_to_b_ = std::move(m); }
  void set_loss_b_to_a(std::unique_ptr<net::LossModel> m) { loss_b_to_a_ = std::move(m); }

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }
  [[nodiscard]] std::uint64_t data_frames_sent() const { return data_frames_sent_; }

 private:
  void transmit(overlay::NodeId from, overlay::LinkFrame f) {
    ++frames_sent_;
    if (f.type == overlay::FrameType::kData ||
        f.type == overlay::FrameType::kRetransmission) {
      ++data_frames_sent_;
    }
    auto& loss = (from == 0) ? loss_a_to_b_ : loss_b_to_a_;
    if (loss->lose(sim_.now(), rng_)) {
      ++frames_lost_;
      return;
    }
    overlay::LinkProtocolEndpoint* target = (from == 0) ? end_b_ : end_a_;
    sim_.schedule(one_way_, [target, f = std::move(f)]() {
      if (target != nullptr) target->on_frame(f);
    });
  }

  sim::Simulator& sim_;
  sim::Rng rng_;
  sim::Duration one_way_;
  std::unique_ptr<net::LossModel> loss_a_to_b_;
  std::unique_ptr<net::LossModel> loss_b_to_a_;
  bool authenticate_;
  std::unique_ptr<crypto::KeyTable> keys_a_;
  std::unique_ptr<crypto::KeyTable> keys_b_;
  Side a_;
  Side b_;
  overlay::LinkProtocolEndpoint* end_a_ = nullptr;
  overlay::LinkProtocolEndpoint* end_b_ = nullptr;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t data_frames_sent_ = 0;
};

/// Builds a message with the fields protocols care about.
inline overlay::Message make_msg(std::uint64_t seq, sim::TimePoint now,
                                 overlay::NodeId origin = 0,
                                 std::size_t payload_bytes = 100) {
  overlay::Message m;
  m.hdr.origin = origin;
  m.hdr.dest = overlay::Destination::unicast(1, 7);
  m.hdr.origin_id = (std::uint64_t{origin} << 48) | seq;
  m.hdr.flow_seq = seq;
  m.hdr.flow_key = 0xF00 + origin;
  m.hdr.origin_time = now;
  m.payload = overlay::make_payload(payload_bytes);
  return m;
}

}  // namespace son::test
