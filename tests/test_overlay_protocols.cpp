#include <gtest/gtest.h>

#include "fake_link.hpp"
#include "overlay/it_fair.hpp"
#include "overlay/realtime.hpp"
#include "overlay/reliable_link.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using son::test::FakeLinkPair;
using son::test::make_msg;

struct ProtoFixture {
  Simulator sim;
  FakeLinkPair pair;
  std::unique_ptr<LinkProtocolEndpoint> a;
  std::unique_ptr<LinkProtocolEndpoint> b;

  ProtoFixture(LinkProtocol proto, Duration one_way, double loss,
               LinkProtocolConfig cfg = {}, std::uint64_t seed = 99, bool auth = false)
      : pair{sim, one_way, loss, seed, auth} {
    a = make_link_endpoint(proto, pair.ctx_a(), cfg);
    b = make_link_endpoint(proto, pair.ctx_b(), cfg);
    pair.attach(a.get(), b.get());
  }
};

// ---- Best effort ---------------------------------------------------------

TEST(BestEffort, DeliversWithoutLoss) {
  ProtoFixture f{LinkProtocol::kBestEffort, 5_ms, 0.0};
  for (std::uint64_t i = 1; i <= 10; ++i) f.a->send(make_msg(i, f.sim.now()));
  f.sim.run();
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 10u);
}

TEST(BestEffort, LossIsFinal) {
  ProtoFixture f{LinkProtocol::kBestEffort, 5_ms, 0.5, {}, 7};
  for (std::uint64_t i = 1; i <= 1000; ++i) f.a->send(make_msg(i, f.sim.now()));
  f.sim.run();
  const auto got = f.pair.ctx_b().delivered.size();
  EXPECT_GT(got, 400u);
  EXPECT_LT(got, 600u);  // nothing recovered
}

// ---- Reliable data link ---------------------------------------------------

TEST(Reliable, EverythingDeliveredUnderHeavyLoss) {
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 0.2, {}, 11};
  const int n = 500;
  for (int i = 1; i <= n; ++i) {
    f.sim.schedule(Duration::milliseconds(i), [&f, i]() {
      f.a->send(make_msg(static_cast<std::uint64_t>(i), f.sim.now()));
    });
  }
  f.sim.run_for(20_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), static_cast<std::size_t>(n));
}

TEST(Reliable, NoDuplicateDeliveries) {
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 0.3, {}, 12};
  const int n = 300;
  for (int i = 1; i <= n; ++i) {
    f.sim.schedule(Duration::milliseconds(i * 2), [&f, i]() {
      f.a->send(make_msg(static_cast<std::uint64_t>(i), f.sim.now()));
    });
  }
  f.sim.run_for(30_s);
  std::set<std::uint64_t> seqs;
  for (const auto& m : f.pair.ctx_b().delivered) {
    EXPECT_TRUE(seqs.insert(m.hdr.flow_seq).second) << "duplicate " << m.hdr.flow_seq;
  }
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(n));
}

TEST(Reliable, OutOfOrderForwardingImmediate) {
  // Drop exactly the first data frame; later frames must still be handed up
  // on first arrival (before the retransmission fills the gap).
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 0.0, {}, 13};

  // Scripted loss: lose the first a->b frame only.
  class FirstFrameLoss final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return std::exchange(first_, false); }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    bool first_ = true;
  };
  f.pair.set_loss_a_to_b(std::make_unique<FirstFrameLoss>());

  f.a->send(make_msg(1, f.sim.now()));
  f.a->send(make_msg(2, f.sim.now()));
  f.sim.run_for(6_ms);
  // Seq 2 arrived and must already be delivered although seq 1 is missing.
  ASSERT_EQ(f.pair.ctx_b().delivered.size(), 1u);
  EXPECT_EQ(f.pair.ctx_b().delivered[0].hdr.flow_seq, 2u);
  f.sim.run_for(5_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 2u);
}

TEST(Reliable, WindowOverflowShedsWithAccounting) {
  LinkProtocolConfig cfg;
  cfg.reliable_window = 8;
  // 100% loss: nothing is ever acked, the window jams.
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 1.0, cfg, 14};
  for (int i = 1; i <= 20; ++i) f.a->send(make_msg(static_cast<std::uint64_t>(i), f.sim.now()));
  EXPECT_EQ(f.pair.ctx_a().protocol_drops, 12u);
}

TEST(Reliable, RetransmissionCountReasonable) {
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 0.1, {}, 15};
  const int n = 1000;
  for (int i = 1; i <= n; ++i) {
    f.sim.schedule(Duration::milliseconds(i), [&f, i]() {
      f.a->send(make_msg(static_cast<std::uint64_t>(i), f.sim.now()));
    });
  }
  f.sim.run_for(30_s);
  auto* rl = dynamic_cast<ReliableLinkEndpoint*>(f.a.get());
  ASSERT_NE(rl, nullptr);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), static_cast<std::size_t>(n));
  // ~10% loss: expect roughly n*0.11 retransmissions, far below n.
  EXPECT_LT(rl->stats().retransmissions, static_cast<std::uint64_t>(n / 2));
  EXPECT_GT(rl->stats().retransmissions, static_cast<std::uint64_t>(n / 20));
}

// ---- Realtime (simple and NM-Strikes) ----------------------------------------

Message rt_msg(std::uint64_t seq, sim::TimePoint now, Duration deadline, std::uint8_t n_req,
               std::uint8_t m_ret) {
  Message m = make_msg(seq, now);
  m.hdr.deadline = deadline;
  m.hdr.nm_requests = n_req;
  m.hdr.nm_retransmissions = m_ret;
  return m;
}

TEST(RealtimeSimple, RecoversIsolatedLossWithOneRequest) {
  ProtoFixture f{LinkProtocol::kRealtimeSimple, 5_ms, 0.0, {}, 16};
  class DropSecond final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return ++count_ == 2; }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    int count_ = 0;
  };
  f.pair.set_loss_a_to_b(std::make_unique<DropSecond>());
  for (int i = 1; i <= 5; ++i) {
    f.sim.schedule(Duration::milliseconds(i * 10), [&f, i]() {
      f.a->send(rt_msg(static_cast<std::uint64_t>(i), f.sim.now(), 100_ms, 1, 1));
    });
  }
  f.sim.run_for(1_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 5u);
  auto* rt = dynamic_cast<RealtimeEndpointBase*>(f.b.get());
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->stats().requests_sent, 1u);
  EXPECT_EQ(rt->stats().recovered, 1u);
}

TEST(RealtimeSimple, GivesUpAfterBudget) {
  // Total a->b loss: data and retransmissions all die; receiver learns about
  // seq 1 only via... nothing arrives at all, so no gap is ever detected.
  // Instead drop only seq 2 and the recovery attempt.
  ProtoFixture f{LinkProtocol::kRealtimeSimple, 5_ms, 0.0, {}, 17};
  class DropSecondAndRetrans final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override {
      ++count_;
      return count_ == 2 || count_ >= 4;  // seq2, then every retransmission
    }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    int count_ = 0;
  };
  f.pair.set_loss_a_to_b(std::make_unique<DropSecondAndRetrans>());
  for (int i = 1; i <= 3; ++i) {
    f.sim.schedule(Duration::milliseconds(i * 10), [&f, i]() {
      f.a->send(rt_msg(static_cast<std::uint64_t>(i), f.sim.now(), 50_ms, 1, 1));
    });
  }
  f.sim.run_for(2_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 2u);
  auto* rt = dynamic_cast<RealtimeEndpointBase*>(f.b.get());
  EXPECT_EQ(rt->stats().expired_unrecovered, 1u);
  // Exactly one request in simple mode, never more.
  EXPECT_EQ(rt->stats().requests_sent, 1u);
}

TEST(RealtimeNM, SchedulesNRequestsAndMRetransmissions) {
  ProtoFixture f{LinkProtocol::kRealtimeNM, 5_ms, 0.0, {}, 18};
  class DropFirstData final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return std::exchange(first_, false); }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    bool first_ = true;
  };
  f.pair.set_loss_a_to_b(std::make_unique<DropFirstData>());
  // Requests also get lost? No — b->a is clean; but the retransmissions flow
  // a->b cleanly after the first loss, so recovery happens on request 1,
  // response 1; the remaining requests are cancelled, extra retransmissions
  // are deduped.
  f.a->send(rt_msg(1, f.sim.now(), 200_ms, 3, 3));
  f.sim.schedule(10_ms, [&f]() { f.a->send(rt_msg(2, f.sim.now(), 200_ms, 3, 3)); });
  f.sim.run_for(2_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 2u);
  auto* recv = dynamic_cast<RealtimeEndpointBase*>(f.b.get());
  auto* send = dynamic_cast<RealtimeEndpointBase*>(f.a.get());
  EXPECT_EQ(recv->stats().recovered, 1u);
  EXPECT_EQ(recv->stats().requests_sent, 1u);  // cancelled after recovery
  // Sender fires all M=3 spaced retransmissions (they were scheduled on the
  // first request).
  EXPECT_EQ(send->stats().retransmissions_sent, 3u);
  EXPECT_EQ(recv->stats().duplicates, 2u);
}

TEST(RealtimeNM, LaterRequestsIgnoredBySender) {
  // Lose the first data frame AND the first two requests: the sender only
  // sees request #3 and must schedule exactly one M-burst.
  ProtoFixture f{LinkProtocol::kRealtimeNM, 5_ms, 0.0, {}, 19};
  class DropFirst final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return std::exchange(first_, false); }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    bool first_ = true;
  };
  class DropFirstTwo final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return ++count_ <= 2; }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    int count_ = 0;
  };
  f.pair.set_loss_a_to_b(std::make_unique<DropFirst>());
  f.pair.set_loss_b_to_a(std::make_unique<DropFirstTwo>());
  f.a->send(rt_msg(1, f.sim.now(), 200_ms, 3, 2));
  f.sim.schedule(10_ms, [&f]() { f.a->send(rt_msg(2, f.sim.now(), 200_ms, 3, 2)); });
  f.sim.run_for(2_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 2u);
  auto* send = dynamic_cast<RealtimeEndpointBase*>(f.a.get());
  auto* recv = dynamic_cast<RealtimeEndpointBase*>(f.b.get());
  EXPECT_EQ(recv->stats().requests_sent, 3u);
  EXPECT_EQ(send->stats().retransmissions_sent, 2u);  // one M=2 burst only
}

TEST(RealtimeNM, BeatsSimpleUnderBurstyLoss) {
  // Under correlated (bursty) loss, N×M spaced recovery should deliver more
  // packets within the deadline than 1×1 recovery — the paper's core claim
  // for NM-Strikes.
  const auto run = [](LinkProtocol proto, std::uint8_t n_req, std::uint8_t m_ret) {
    Simulator sim;
    FakeLinkPair pair{sim, 5_ms, 0.0, 21};
    net::GilbertElliottLoss::Params p;
    p.mean_good_time = 300_ms;
    p.mean_bad_time = 30_ms;
    p.loss_good = 0.0;
    p.loss_bad = 0.95;
    pair.set_loss_a_to_b(net::make_gilbert_elliott(p, sim::Rng{22}));
    auto a = make_link_endpoint(proto, pair.ctx_a(), {});
    auto b = make_link_endpoint(proto, pair.ctx_b(), {});
    pair.attach(a.get(), b.get());
    const int n = 5000;
    for (int i = 1; i <= n; ++i) {
      sim.schedule(Duration::milliseconds(i), [&, i]() {
        Message m = make_msg(static_cast<std::uint64_t>(i), sim.now());
        m.hdr.deadline = 200_ms;
        m.hdr.nm_requests = n_req;
        m.hdr.nm_retransmissions = m_ret;
        a->send(std::move(m));
      });
    }
    sim.run_for(Duration::seconds(n / 1000 + 2));
    return static_cast<double>(pair.ctx_b().delivered.size()) / n;
  };
  const double simple = run(LinkProtocol::kRealtimeSimple, 1, 1);
  const double nm = run(LinkProtocol::kRealtimeNM, 3, 3);
  EXPECT_GT(nm, simple);
  EXPECT_GT(nm, 0.99);
}

TEST(RealtimeNM, OverheadApproximatelyOnePlusMp) {
  // §IV-A: "The overall cost of the NM-Strikes protocol (on the sender to
  // receiver side) is 1 + Mp". With independent loss p and M=3.
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.05, 23};
  auto a = make_link_endpoint(LinkProtocol::kRealtimeNM, pair.ctx_a(), {});
  auto b = make_link_endpoint(LinkProtocol::kRealtimeNM, pair.ctx_b(), {});
  pair.attach(a.get(), b.get());
  const int n = 20000;
  for (int i = 1; i <= n; ++i) {
    sim.schedule(Duration::milliseconds(i), [&, i]() {
      Message m = make_msg(static_cast<std::uint64_t>(i), sim.now());
      m.hdr.deadline = 200_ms;
      m.hdr.nm_requests = 3;
      m.hdr.nm_retransmissions = 3;
      a->send(std::move(m));
    });
  }
  sim.run_for(Duration::seconds(25));
  const double cost = static_cast<double>(pair.data_frames_sent()) / n;
  EXPECT_NEAR(cost, 1.0 + 3 * 0.05, 0.03);
}

// ---- Intrusion-tolerant protocols -----------------------------------------------

TEST(ItPriority, RoundRobinFairnessUnderFlood) {
  // Source 99 floods; sources 1 and 2 send modestly. With per-source queues
  // and round-robin egress, the modest sources keep their goodput.
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 31};
  LinkProtocolConfig cfg;
  cfg.it_egress_msgs_per_sec = 300;  // bottleneck
  cfg.it_buffer_per_source = 16;
  auto a = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());

  // 10 seconds of traffic: attacker 2000/s, correct sources 100/s each.
  for (int t = 0; t < 10000; ++t) {
    sim.schedule(Duration::milliseconds(t), [&, t]() {
      for (int k = 0; k < 2; ++k) {
        a->send(make_msg(static_cast<std::uint64_t>(t * 2 + k), sim.now(), 99));
      }
      if (t % 10 == 0) {
        a->send(make_msg(static_cast<std::uint64_t>(t), sim.now(), 1));
        a->send(make_msg(static_cast<std::uint64_t>(t), sim.now(), 2));
      }
    });
  }
  sim.run_for(11_s);
  std::map<NodeId, int> per_source;
  for (const auto& m : pair.ctx_b().delivered) ++per_source[m.hdr.origin];
  // Egress ~300/s for 10s = ~3000 slots. Fair split: each active source gets
  // ~1000. Sources 1,2 offered ~1000 each -> they should get nearly all of
  // it; attacker is clamped to ~1/3 of egress instead of 20/21.
  EXPECT_GT(per_source[1], 800);
  EXPECT_GT(per_source[2], 800);
  EXPECT_LT(per_source[99], 1500);
}

TEST(ItPriority, EvictsOldestLowestPriorityWhenFull) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 32};
  LinkProtocolConfig cfg;
  cfg.it_buffer_per_source = 4;
  cfg.it_egress_msgs_per_sec = 1000;
  auto a = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());

  // Fill the queue instantly: 4 low-priority, then 4 high-priority. The 4
  // high must evict the 4 low (pump drains 1/ms, so enqueue beats drain).
  for (int i = 0; i < 4; ++i) {
    Message m = make_msg(static_cast<std::uint64_t>(i), sim.now(), 5);
    m.hdr.priority = 1;
    a->send(std::move(m));
  }
  for (int i = 4; i < 8; ++i) {
    Message m = make_msg(static_cast<std::uint64_t>(i), sim.now(), 5);
    m.hdr.priority = 9;
    a->send(std::move(m));
  }
  sim.run_for(1_s);
  // One low-priority message escapes via the first pump slot timing at
  // worst; at least 4 high-priority ones must arrive.
  int high = 0;
  for (const auto& m : pair.ctx_b().delivered) high += (m.hdr.priority == 9);
  EXPECT_EQ(high, 4);
  EXPECT_LE(pair.ctx_b().delivered.size(), 5u);
}

TEST(ItPriority, LowerPriorityArrivalDroppedWhenFullOfHigh) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 33};
  LinkProtocolConfig cfg;
  cfg.it_buffer_per_source = 3;
  cfg.it_egress_msgs_per_sec = 1000;
  auto a = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());
  for (int i = 0; i < 3; ++i) {
    Message m = make_msg(static_cast<std::uint64_t>(i), sim.now(), 5);
    m.hdr.priority = 9;
    a->send(std::move(m));
  }
  Message low = make_msg(99, sim.now(), 5);
  low.hdr.priority = 1;
  EXPECT_FALSE(a->send(std::move(low)));
  sim.run_for(1_s);
  for (const auto& m : pair.ctx_b().delivered) EXPECT_EQ(m.hdr.priority, 9);
}

TEST(ItPriority, AuthenticationRejectsTamperedFrames) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 34, /*authenticate=*/true};
  LinkProtocolConfig cfg;
  auto a = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());
  a->send(make_msg(1, sim.now()));
  sim.run_for(1_s);
  EXPECT_EQ(pair.ctx_b().delivered.size(), 1u);

  // Inject a forged frame directly (no valid tag).
  LinkFrame forged;
  forged.link = 0;
  forged.from = 0;
  forged.to = 1;
  forged.proto = LinkProtocol::kITPriority;
  forged.type = FrameType::kData;
  forged.msg = make_msg(2, sim.now());
  forged.authenticated = false;
  b->on_frame(forged);
  sim.run_for(1_s);
  EXPECT_EQ(pair.ctx_b().delivered.size(), 1u);  // rejected
  auto* itb = dynamic_cast<ItEndpointBase*>(b.get());
  EXPECT_EQ(itb->stats().auth_failures, 1u);

  // And a frame whose body was tampered after signing.
  LinkFrame tampered;
  tampered.link = 0;
  tampered.from = 0;
  tampered.to = 1;
  tampered.proto = LinkProtocol::kITPriority;
  tampered.type = FrameType::kData;
  Message m3 = make_msg(3, sim.now());
  tampered.msg = m3;
  // Sign over the true bytes, then mutate the payload.
  const auto bytes = auth_bytes(m3);
  tampered.auth = pair.ctx_a().keys()->sign(1, std::span<const std::uint8_t>{bytes});
  tampered.authenticated = true;
  tampered.msg->hdr.priority = 99;  // forged priority escalation
  b->on_frame(tampered);
  sim.run_for(1_s);
  EXPECT_EQ(pair.ctx_b().delivered.size(), 1u);
  EXPECT_EQ(itb->stats().auth_failures, 2u);
}

TEST(ItReliable, DeliversEverythingDespiteLoss) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.15, 35};
  LinkProtocolConfig cfg;
  cfg.it_egress_msgs_per_sec = 5000;
  auto a = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());
  const int n = 300;
  for (int i = 1; i <= n; ++i) {
    sim.schedule(Duration::milliseconds(i), [&, i]() {
      a->send(make_msg(static_cast<std::uint64_t>(i), sim.now()));
    });
  }
  sim.run_for(60_s);
  EXPECT_EQ(pair.ctx_b().delivered.size(), static_cast<std::size_t>(n));
}

TEST(ItReliable, BackpressurePausesAndRecovers) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 36};
  LinkProtocolConfig cfg;
  cfg.it_egress_msgs_per_sec = 2000;
  cfg.it_buffer_per_flow = 8;
  auto a = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());

  // Receiver refuses admission for the first 200 ms (downstream congested).
  pair.ctx_b().admit = [&sim](const Message&) {
    return sim.now() > sim::TimePoint::zero() + 200_ms;
  };
  const int n = 6;
  for (int i = 1; i <= n; ++i) a->send(make_msg(static_cast<std::uint64_t>(i), sim.now()));
  sim.run_for(5_s);
  EXPECT_EQ(pair.ctx_b().delivered.size(), static_cast<std::size_t>(n));
  EXPECT_GT(pair.ctx_b().refused, 0u);
}

TEST(ItReliable, SenderQueueFullRefusesNewMessages) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 1.0, 37};  // total loss: queue jams
  LinkProtocolConfig cfg;
  cfg.it_buffer_per_flow = 4;
  cfg.it_egress_msgs_per_sec = 100;
  auto a = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());
  int accepted = 0, refused = 0;
  for (int i = 1; i <= 12; ++i) {
    a->send(make_msg(static_cast<std::uint64_t>(i), sim.now())) ? ++accepted : ++refused;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(refused, 8);
}

TEST(ItReliable, PerFlowQueuesIsolateFlows) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 38};
  LinkProtocolConfig cfg;
  cfg.it_buffer_per_flow = 4;
  cfg.it_egress_msgs_per_sec = 2000;
  auto a = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());
  // Jam flow A's admission downstream; flow B must still flow.
  pair.ctx_b().admit = [](const Message& m) { return m.hdr.flow_key != 0xF00; };
  int a_refused_at_source = 0;
  for (int i = 1; i <= 20; ++i) {
    sim.schedule(Duration::milliseconds(i * 5), [&, i]() {
      // flow 0xF00 (jammed downstream -> backpressure reaches the source)
      if (!a->send(make_msg(static_cast<std::uint64_t>(i), sim.now(), 0))) {
        ++a_refused_at_source;
      }
      a->send(make_msg(static_cast<std::uint64_t>(i), sim.now(), 1));  // flow 0xF01
    });
  }
  sim.run_for(5_s);
  int flow_b = 0;
  for (const auto& m : pair.ctx_b().delivered) flow_b += (m.hdr.flow_key == 0xF01);
  EXPECT_EQ(flow_b, 20);
  // The jammed flow's backpressure propagated all the way to its source.
  EXPECT_GT(a_refused_at_source, 0);
}

}  // namespace
}  // namespace son::overlay
