// The intrusion-tolerant crypto fast path: zero-allocation two-span auth
// serialization, per-link MacContext handles, and the midstate/seed ablation
// knob. Three contracts are pinned here:
//
//  1. Encoding equivalence — the streaming head/suffix encoders are
//     byte-identical to the heap-allocating seed encoders (auth_bytes /
//     control_auth_bytes), so every tag is bit-identical to the seed.
//  2. Zero allocation — a multi-hop sign / verify / re-sign pipeline over
//     resolved MacContexts performs no heap allocation in steady state.
//  3. Transit keying — a forwarding node verifies with the INGRESS link's
//     pairwise key and re-signs with the EGRESS link's key (regression for
//     the bench hook that used links_.front() for both).
#include <gtest/gtest.h>

#include <array>
#include <random>

#include "crypto/keys.hpp"
#include "overlay/frame.hpp"
#include "overlay/link_state.hpp"
#include "overlay/group_state.hpp"
#include "overlay/network.hpp"
#include "sim/alloc_probe.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;

Message test_message(std::size_t payload_bytes) {
  Message m;
  m.hdr.origin = 3;
  m.hdr.src_port = 17;
  m.hdr.dest = Destination::unicast(9, 50);
  m.hdr.origin_id = (std::uint64_t{3} << 48) | 12345;
  m.hdr.flow_seq = 77;
  m.hdr.flow_key = 0xDEADBEEFCAFEF00DULL;
  m.hdr.scheme = RouteScheme::kDissemination;
  m.hdr.link_protocol = LinkProtocol::kITPriority;
  m.hdr.mask = 0b1011;
  m.hdr.origin_time = sim::TimePoint::zero() + 123_ms;
  m.hdr.deadline = 65_ms;
  m.hdr.priority = 9;
  if (payload_bytes > 0) m.payload = make_payload(payload_bytes, 0x5C);
  return m;
}

LinkFrame lsa_frame(std::size_t n_links) {
  LinkFrame f;
  f.link = 2;
  f.from = 4;
  f.to = 5;
  f.type = FrameType::kLsa;
  f.hello_seq = 991;
  f.t_sent = sim::TimePoint::zero() + 777_ms;
  f.channel = 1;
  LinkStateAd ad;
  ad.origin = 4;
  ad.seq = 31;
  for (std::size_t i = 0; i < n_links; ++i) {
    ad.links.push_back(LinkReport{static_cast<LinkBit>(i), i % 2 == 0, 3.25 + double(i), 0.01});
  }
  f.control = ad;
  return f;
}

// ---- Encoding equivalence ----------------------------------------------------

TEST(AuthEncoding, HeadPlusPayloadEqualsSeedEncoder) {
  for (const std::size_t payload : {0u, 1u, 300u, 1200u}) {
    const Message m = test_message(payload);
    std::array<std::uint8_t, kAuthHeadBytes> head{};
    const std::size_t n = auth_head_bytes(m, std::span{head});
    EXPECT_EQ(n, kAuthHeadBytes);

    const std::vector<std::uint8_t> seed = auth_bytes(m);
    ASSERT_EQ(seed.size(), kAuthHeadBytes + payload);
    EXPECT_TRUE(std::equal(head.begin(), head.end(), seed.begin()));
    if (m.payload) {
      EXPECT_TRUE(std::equal(m.payload->begin(), m.payload->end(),
                             seed.begin() + static_cast<std::ptrdiff_t>(kAuthHeadBytes)));
    }
  }
}

TEST(AuthEncoding, ControlHeadPlusSuffixEqualsSeedEncoder) {
  std::vector<std::uint8_t> scratch;
  for (std::size_t n_links = 0; n_links <= 4; ++n_links) {
    const LinkFrame f = lsa_frame(n_links);
    std::array<std::uint8_t, kControlAuthHeadBytes> head{};
    const std::size_t n = control_auth_head_bytes(f, std::span{head});
    EXPECT_EQ(n, kControlAuthHeadBytes);
    control_auth_suffix_into(f, scratch);

    const std::vector<std::uint8_t> seed = control_auth_bytes(f);
    ASSERT_EQ(seed.size(), n + scratch.size());
    EXPECT_TRUE(std::equal(head.begin(), head.end(), seed.begin()));
    EXPECT_TRUE(std::equal(scratch.begin(), scratch.end(),
                           seed.begin() + static_cast<std::ptrdiff_t>(n)));
  }
}

TEST(AuthEncoding, GroupStateSuffixEqualsSeedEncoder) {
  LinkFrame f;
  f.type = FrameType::kGroupState;
  f.from = 7;
  f.to = 2;
  f.link = 1;
  GroupStateAd ad;
  ad.origin = 7;
  ad.seq = 12;
  ad.joined = {100, 200, 4000000000u};
  f.control = ad;

  std::array<std::uint8_t, kControlAuthHeadBytes> head{};
  const std::size_t n = control_auth_head_bytes(f, std::span{head});
  std::vector<std::uint8_t> scratch;
  control_auth_suffix_into(f, scratch);
  const std::vector<std::uint8_t> seed = control_auth_bytes(f);
  ASSERT_EQ(seed.size(), n + scratch.size());
  EXPECT_TRUE(std::equal(head.begin(), head.end(), seed.begin()));
  EXPECT_TRUE(std::equal(scratch.begin(), scratch.end(),
                         seed.begin() + static_cast<std::ptrdiff_t>(n)));
}

// Tags over the two-span streaming input equal tags over the seed buffer —
// the end-to-end bit-identity statement.
TEST(AuthEncoding, StreamedTagEqualsSeedTag) {
  crypto::Key master{};
  master[11] = 0x3C;
  crypto::KeyTable table(master, 0, 4);
  const crypto::MacContext mac = table.context(2);

  const Message m = test_message(1200);
  std::array<std::uint8_t, kAuthHeadBytes> head{};
  const std::size_t n = auth_head_bytes(m, std::span{head});
  const auto seed = auth_bytes(m);
  const crypto::Tag fast = mac.sign(
      std::span<const std::uint8_t>{head.data(), n},
      std::span<const std::uint8_t>{m.payload->data(), m.payload->size()});
  EXPECT_EQ(fast, table.sign(2, std::span<const std::uint8_t>{seed}));

  const LinkFrame f = lsa_frame(3);
  std::array<std::uint8_t, kControlAuthHeadBytes> chead{};
  const std::size_t cn = control_auth_head_bytes(f, std::span{chead});
  std::vector<std::uint8_t> suffix;
  control_auth_suffix_into(f, suffix);
  const auto cseed = control_auth_bytes(f);
  EXPECT_EQ(mac.sign(std::span<const std::uint8_t>{chead.data(), cn},
                     std::span<const std::uint8_t>{suffix}),
            table.sign(2, std::span<const std::uint8_t>{cseed}));
}

// ---- Zero allocation ---------------------------------------------------------

// A multi-hop IT pipeline — origin sign, transit verify + re-sign (distinct
// pairwise keys), destination verify, plus a signed control frame — runs
// allocation-free once the scratch capacities are warm. This is the pin for
// the tentpole's zero-allocation claim; son-analyze gates the same chain
// statically via SON_HOT.
TEST(CryptoFastPathAlloc, MultiHopSignVerifyResignLoopIsAllocationFree) {
  crypto::Key master{};
  master[0] = 0xA1;
  crypto::KeyTable t0(master, 0, 4);
  crypto::KeyTable t1(master, 1, 4);
  crypto::KeyTable t2(master, 2, 4);
  // Resolved once per link, as endpoints do.
  const crypto::MacContext c01 = t0.context(1);
  const crypto::MacContext c10 = t1.context(0);
  const crypto::MacContext c12 = t1.context(2);
  const crypto::MacContext c21 = t2.context(1);

  const Message m = test_message(1200);
  const LinkFrame f = lsa_frame(3);
  const std::span<const std::uint8_t> body{m.payload->data(), m.payload->size()};
  std::array<std::uint8_t, kAuthHeadBytes> head{};
  std::array<std::uint8_t, kControlAuthHeadBytes> chead{};
  std::vector<std::uint8_t> suffix_scratch;

  unsigned ok_hops = 0;
  std::uint8_t fold = 0;
  const auto hop = [&]() {
    const std::size_t n = auth_head_bytes(m, std::span{head});
    const std::span<const std::uint8_t> head_sp{head.data(), n};
    const crypto::Tag t_origin = c01.sign(head_sp, body);       // origin -> hop 1
    if (c10.verify(head_sp, body, t_origin)) ++ok_hops;         // hop 1 verifies
    const crypto::Tag t_resign = c12.sign(head_sp, body);       // hop 1 -> hop 2
    if (c21.verify(head_sp, body, t_resign)) ++ok_hops;         // hop 2 verifies
    const std::size_t cn = control_auth_head_bytes(f, std::span{chead});
    control_auth_suffix_into(f, suffix_scratch);                // monotone scratch
    const crypto::Tag t_ctrl = c01.sign(std::span<const std::uint8_t>{chead.data(), cn},
                                        std::span<const std::uint8_t>{suffix_scratch});
    fold = static_cast<std::uint8_t>(fold ^ t_origin[0] ^ t_resign[0] ^ t_ctrl[0]);
  };

  for (int i = 0; i < 64; ++i) hop();  // warm every scratch past its high-water mark

  const std::uint64_t before = sim::alloc_count();
  for (int i = 0; i < 100'000; ++i) hop();
  const std::uint64_t delta = sim::alloc_count() - before;
  EXPECT_EQ(delta, 0u) << "heap allocations leaked into the per-hop auth pipeline";
  EXPECT_EQ(ok_hops, 2u * (64u + 100'000u));
  (void)fold;
}

// ---- Transit re-sign keying --------------------------------------------------

// Regression: the forwarding microbenchmark hook must verify against the
// ingress link's peer and re-sign toward the routed egress link's peer. The
// re-signed tag must therefore verify at the NEXT hop under its own
// independently-derived key table.
TEST(TransitResign, VerifyKeyedToIngressResignKeyedToEgress) {
  sim::Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 3;
  opts.node.authenticate = true;
  opts.node.master_key[4] = 0x66;
  auto fx = build_chain(sim, opts, sim::Rng{11});
  fx.overlay->settle(3_s);

  // A message addressed to node 2, transiting node 1, having arrived from
  // node 0 on the first chain hop.
  Message m = test_message(600);
  m.hdr.origin = 0;
  m.hdr.dest = Destination::unicast(2, 50);
  m.hdr.scheme = RouteScheme::kLinkState;

  auto& transit = fx.overlay->node(1);
  const LinkBit ingress = fx.hop_overlay_links[0];
  const LinkBit egress = fx.hop_overlay_links[1];

  // What node 0 signs toward node 1 (pairwise key 0<->1, symmetric).
  const crypto::Tag arrival = transit.bench_make_arrival_tag(m, ingress);
  const auto res = transit.bench_forward_lookup(m, ingress, &arrival);

  EXPECT_TRUE(res.verified) << "verify must use the ingress link's pairwise key";
  EXPECT_EQ(res.egress, egress);
  // The re-signed tag must be exactly what node 2 expects on ITS link from
  // node 1 — i.e. keyed 1<->2, not 0<->1.
  auto& dest = fx.overlay->node(2);
  EXPECT_EQ(res.resigned, dest.bench_make_arrival_tag(m, egress))
      << "re-sign must use the egress link's pairwise key";
  EXPECT_NE(res.resigned, arrival);

  // A tag keyed to the wrong link (the old bug: both ops on links_.front())
  // fails verification.
  const crypto::Tag wrong_key_tag = transit.bench_make_arrival_tag(m, egress);
  const auto bad = transit.bench_forward_lookup(m, ingress, &wrong_key_tag);
  EXPECT_FALSE(bad.verified);

  // The seed ablation path produces bit-identical tags.
  const auto seed = transit.bench_forward_lookup(m, ingress, &arrival,
                                                 OverlayNode::BenchAuthPath::kSeed);
  EXPECT_TRUE(seed.verified);
  EXPECT_EQ(seed.resigned, res.resigned);
}

// The midstate knob must not change a single byte anywhere: run the same
// authenticated IT traffic with the knob on and off and compare node stats.
TEST(TransitResign, MidstateKnobInvariantEndToEnd) {
  const auto run = [](bool midstate) {
    sim::Simulator sim;
    ChainOptions opts;
    opts.n_nodes = 4;
    opts.node.authenticate = true;
    opts.node.master_key[9] = 0x2B;
    opts.node.crypto_midstate = midstate;
    auto fx = build_chain(sim, opts, sim::Rng{21});
    fx.overlay->settle(3_s);

    auto& src = fx.overlay->node(0).connect(100);
    auto& dst = fx.overlay->node(3).connect(200);
    std::uint64_t delivered = 0;
    std::int64_t last_latency_ns = 0;
    dst.set_handler([&](const Message&, sim::Duration lat) {
      ++delivered;
      last_latency_ns = lat.ns();
    });
    ServiceSpec spec;
    spec.link_protocol = LinkProtocol::kITPriority;
    for (int i = 0; i < 50; ++i) {
      src.send(Destination::unicast(3, 200), make_payload(400), spec);
    }
    sim.run_for(2_s);
    std::uint64_t auth_failures = 0;
    for (NodeId n = 0; n < fx.overlay->size(); ++n) {
      auth_failures += fx.overlay->node(n).stats().control_auth_failures;
    }
    return std::tuple{delivered, last_latency_ns, auth_failures};
  };
  const auto fast = run(true);
  const auto seed = run(false);
  EXPECT_EQ(std::get<0>(fast), 50u);
  EXPECT_EQ(fast, seed);
}

}  // namespace
}  // namespace son::overlay
