#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace son::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent{7};
  Rng f1 = parent.fork(1);
  Rng f2 = Rng{7}.fork(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());

  Rng g1 = parent.fork(1);
  Rng g2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (g1.next_u32() == g2.next_u32());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r{4};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng r{5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r{6};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng r{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanIsRight) {
  Rng r{8};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r{9};
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, IndexStaysInBounds) {
  Rng r{10};
  for (int i = 0; i < 1000; ++i) ASSERT_LT(r.index(13), 13u);
}

TEST(Rng, ShufflePermutes) {
  Rng r{11};
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  r.shuffle(w);
  auto sorted = w;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ChiSquaredUniformityU32Buckets) {
  // 16 buckets over next_u32; chi^2 with 15 dof should be < 40 comfortably.
  Rng r{12};
  const int n = 160000;
  std::vector<int> buckets(16, 0);
  for (int i = 0; i < n; ++i) ++buckets[r.next_u32() >> 28];
  double chi2 = 0;
  const double expect = n / 16.0;
  for (const int b : buckets) chi2 += (b - expect) * (b - expect) / expect;
  EXPECT_LT(chi2, 40.0);
}

}  // namespace
}  // namespace son::sim
