// Fuzz-ish malformed-argv coverage for exp::Options::parse.
//
// parse() owns the process-exiting error path (usage() + exit 2), so the
// malformed cases run as gtest death tests: the statement must *exit* —
// not overflow argv, not crash, not limp on with half-parsed options. This
// pins the ASan finding fixed in the allocation-free-core PR (reading one
// past argv when a flag's value was missing at the end of the array).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "exp/options.hpp"

namespace son::exp {
namespace {

/// Builds a mutable, null-terminated argv from string literals, mirroring
/// what the C runtime hands main().
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_{std::move(args)} {
    for (auto& s : strings_) ptrs_.push_back(s.data());
    ptrs_.push_back(nullptr);
  }
  [[nodiscard]] int argc() const { return static_cast<int>(strings_.size()); }
  char** data() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

Options parse(Argv& a, int& argc) {
  argc = a.argc();
  return Options::parse(argc, a.data(), "t", 3, 1);
}

int parse_and_exit_code(std::vector<std::string> args) {
  Argv a{std::move(args)};
  int argc = 0;
  (void)parse(a, argc);
  return 0;  // unreachable for malformed input: parse() exits 2
}

using OptionsDeath = ::testing::Test;

TEST(OptionsDeath, MissingValueAtEndOfArgvExits) {
  // The regression ASan caught: "--reps" as the last argument must not read
  // argv[argc]. Every value-taking flag gets the same treatment.
  for (const char* flag : {"--reps", "--jobs", "--shards", "--flows", "--load-curve",
                           "--churn", "--seed-base", "--seeds", "--json-out"}) {
    EXPECT_EXIT(parse_and_exit_code({"bench", flag}), ::testing::ExitedWithCode(2),
                "needs a value")
        << flag;
  }
}

TEST(OptionsDeath, NonNumericValueExits) {
  EXPECT_EXIT(parse_and_exit_code({"bench", "--reps", "many"}),
              ::testing::ExitedWithCode(2), "bad numeric argument");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--seed-base", "0x"}),
              ::testing::ExitedWithCode(2), "bad numeric argument");
}

TEST(OptionsDeath, MalformedSeedListsExit) {
  EXPECT_EXIT(parse_and_exit_code({"bench", "--seeds", ""}),
              ::testing::ExitedWithCode(2), "empty seed list");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--seeds", ","}),
              ::testing::ExitedWithCode(2), "bad seed list");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--seeds", "1,,2"}),
              ::testing::ExitedWithCode(2), "bad seed list");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--seeds", "1,x"}),
              ::testing::ExitedWithCode(2), "bad seed list");
}

TEST(OptionsDeath, MalformedShardsExit) {
  EXPECT_EXIT(parse_and_exit_code({"bench", "--shards", "x"}),
              ::testing::ExitedWithCode(2), "bad numeric argument");
  // strtoull would silently wrap "-1" into a huge worker count; the explicit
  // sign check turns it into a usage error instead.
  EXPECT_EXIT(parse_and_exit_code({"bench", "--shards", "-1"}),
              ::testing::ExitedWithCode(2), "non-negative");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--shards", "4096"}),
              ::testing::ExitedWithCode(2), "too many shards");
}

TEST(OptionsDeath, MalformedFlowsExit) {
  // Same discipline as --shards: reject garbage, wrapped negatives and
  // absurd counts instead of limping on.
  EXPECT_EXIT(parse_and_exit_code({"bench", "--flows", "x"}),
              ::testing::ExitedWithCode(2), "bad numeric argument");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--flows", "-1"}),
              ::testing::ExitedWithCode(2), "non-negative");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--flows", "200000000"}),
              ::testing::ExitedWithCode(2), "too many flows");
}

TEST(OptionsDeath, UnknownLoadCurveExits) {
  EXPECT_EXIT(parse_and_exit_code({"bench", "--load-curve", "sawtooth"}),
              ::testing::ExitedWithCode(2), "const, diurnal or flash");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--load-curve", ""}),
              ::testing::ExitedWithCode(2), "const, diurnal or flash");
}

TEST(Options, FlowsAndLoadCurveParse) {
  {
    Argv a{{"bench", "--flows", "100000", "--load-curve", "flash"}};
    int argc = 0;
    const Options o = parse(a, argc);
    EXPECT_EQ(o.flows, 100000);
    EXPECT_EQ(o.load_curve, "flash");
    EXPECT_EQ(argc, 1);  // all four tokens consumed
  }
  {
    Argv a{{"bench"}};
    int argc = 0;
    const Options o = parse(a, argc);
    EXPECT_EQ(o.flows, 0);  // default: legacy per-object senders
    EXPECT_EQ(o.load_curve, "const");
  }
  for (const char* name : {"const", "diurnal", "flash"}) {
    Argv a{{"bench", "--load-curve", name}};
    int argc = 0;
    EXPECT_EQ(parse(a, argc).load_curve, name);
  }
}

TEST(Options, ShardsParsesAndResolves) {
  {
    Argv a{{"bench", "--shards", "4"}};
    int argc = 0;
    const Options o = parse(a, argc);
    EXPECT_EQ(o.shards, 4);
    EXPECT_EQ(o.resolved_shards(), 4u);
    EXPECT_EQ(argc, 1);  // flag and value consumed
  }
  {
    Argv a{{"bench"}};
    int argc = 0;
    EXPECT_EQ(parse(a, argc).shards, 1);  // default: single-threaded kernel
  }
  {
    Argv a{{"bench", "--shards", "0"}};  // 0 = auto (hardware concurrency)
    int argc = 0;
    const Options o = parse(a, argc);
    EXPECT_EQ(o.shards, 0);
    EXPECT_GE(o.resolved_shards(), 1u);
  }
}

TEST(Options, ChurnParses) {
  {
    Argv a{{"bench", "--churn", "1.5"}};
    int argc = 0;
    const Options o = parse(a, argc);
    EXPECT_DOUBLE_EQ(o.churn_rate, 1.5);
    EXPECT_EQ(o.churn_model, "poisson");  // default model
    EXPECT_EQ(argc, 1);
  }
  {
    Argv a{{"bench", "--churn", "0.25,periodic"}};
    int argc = 0;
    const Options o = parse(a, argc);
    EXPECT_DOUBLE_EQ(o.churn_rate, 0.25);
    EXPECT_EQ(o.churn_model, "periodic");
  }
  {
    Argv a{{"bench"}};
    int argc = 0;
    const Options o = parse(a, argc);
    EXPECT_DOUBLE_EQ(o.churn_rate, 0.0);  // default: bench's own churn policy
    EXPECT_EQ(o.churn_model, "poisson");
  }
}

TEST(OptionsDeath, MalformedChurnExits) {
  EXPECT_EXIT(parse_and_exit_code({"bench", "--churn", "fast"}),
              ::testing::ExitedWithCode(2), "RATE");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--churn", "-1"}),
              ::testing::ExitedWithCode(2), "RATE");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--churn", "nan"}),
              ::testing::ExitedWithCode(2), "RATE");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--churn", "1.5;periodic"}),
              ::testing::ExitedWithCode(2), "RATE");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--churn", "1.5,weibull"}),
              ::testing::ExitedWithCode(2), "poisson or periodic");
  EXPECT_EXIT(parse_and_exit_code({"bench", "--churn", "1.5,"}),
              ::testing::ExitedWithCode(2), "poisson or periodic");
}

TEST(OptionsDeath, HelpExitsZero) {
  // usage() prints to stdout (EXPECT_EXIT matches stderr only), so assert
  // just the exit code.
  EXPECT_EXIT(parse_and_exit_code({"bench", "--help"}), ::testing::ExitedWithCode(0), "");
}

TEST(Options, DuplicateFlagsLastOneWins) {
  Argv a{{"bench", "--reps", "2", "--reps", "9", "--seed-base", "5", "--seed-base", "6"}};
  int argc = 0;
  const Options o = parse(a, argc);
  EXPECT_EQ(o.reps, 9);
  EXPECT_EQ(o.seed_base, 6u);
  EXPECT_EQ(argc, 1);
}

TEST(Options, EmptyStringArgumentPassesThrough) {
  Argv a{{"bench", "", "--quick", ""}};
  int argc = 0;
  const Options o = parse(a, argc);
  EXPECT_TRUE(o.quick);
  ASSERT_EQ(argc, 3);  // program name + the two empty strings
  EXPECT_STREQ(a.data()[1], "");
  EXPECT_STREQ(a.data()[2], "");
  EXPECT_EQ(a.data()[3], nullptr);  // compacted argv stays null-terminated
}

TEST(Options, FlagLikeValuesAreConsumedAsValues) {
  // "--json-out --quick" consumes "--quick" as the path: greedy but
  // predictable; the remaining argv is untouched.
  Argv a{{"bench", "--json-out", "--quick"}};
  int argc = 0;
  const Options o = parse(a, argc);
  EXPECT_EQ(o.json_out, "--quick");
  EXPECT_FALSE(o.quick);
  EXPECT_EQ(argc, 1);
}

TEST(Options, ZeroRepsClampsToOne) {
  Argv a{{"bench", "--reps", "0"}};
  int argc = 0;
  const Options o = parse(a, argc);
  EXPECT_EQ(o.reps, 1);
}

TEST(Options, MixedKnownAndUnknownPreservesUnknownOrder) {
  Argv a{{"bench", "--alpha", "--reps", "4", "--beta", "7", "--quick", "--gamma"}};
  int argc = 0;
  const Options o = parse(a, argc);
  EXPECT_EQ(o.reps, 4);
  EXPECT_TRUE(o.quick);
  ASSERT_EQ(argc, 5);
  EXPECT_STREQ(a.data()[1], "--alpha");
  EXPECT_STREQ(a.data()[2], "--beta");
  EXPECT_STREQ(a.data()[3], "7");
  EXPECT_STREQ(a.data()[4], "--gamma");
  EXPECT_EQ(a.data()[5], nullptr);
}

}  // namespace
}  // namespace son::exp
