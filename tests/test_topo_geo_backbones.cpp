#include <gtest/gtest.h>

#include "topo/backbones.hpp"
#include "topo/dissemination.hpp"
#include "topo/geo.hpp"

namespace son::topo {
namespace {

using namespace son::sim::literals;

TEST(Geo, KnownDistances) {
  const City nyc{"NYC", 40.71, -74.01};
  const City lax{"LAX", 34.05, -118.24};
  // NYC-LA great circle is ~3940 km.
  EXPECT_NEAR(great_circle_km(nyc, lax), 3940, 60);
  EXPECT_NEAR(great_circle_km(nyc, nyc), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(great_circle_km(nyc, lax), great_circle_km(lax, nyc));
}

TEST(Geo, FiberLatencyScalesWithInflation) {
  const City a{"A", 0, 0};
  const City b{"B", 0, 10};  // ~1113 km on the equator
  const auto lat1 = fiber_latency(a, b, 1.0);
  const auto lat13 = fiber_latency(a, b, 1.3);
  EXPECT_NEAR(lat1.to_millis_f(), 1113.0 / 204.0, 0.1);
  EXPECT_NEAR(lat13.to_millis_f() / lat1.to_millis_f(), 1.3, 0.01);
}

TEST(Geo, ContinentCrossingIsPaperScale) {
  // The paper: "the propagation delay to cross a continent is on the order
  // of 35-40ms" (one way).
  const City nyc{"NYC", 40.71, -74.01};
  const City sfo{"SFO", 37.77, -122.42};
  const double ms = fiber_latency(nyc, sfo).to_millis_f();
  EXPECT_GT(ms, 20.0);
  EXPECT_LT(ms, 40.0);
}

TEST(ContinentalUs, ShortOverlayLinks) {
  // §II-A: "placing overlay nodes about 10ms apart on the Internet provides
  // the desired performance and resilience qualities."
  const BackboneMap m = continental_us();
  EXPECT_EQ(m.cities.size(), 12u);
  for (const auto& [u, v] : m.edges) {
    const double ms = fiber_latency(m.cities[u], m.cities[v]).to_millis_f();
    EXPECT_LT(ms, 12.0) << m.cities[u].name << "-" << m.cities[v].name;
    EXPECT_GT(ms, 0.5);
  }
}

TEST(ContinentalUs, GraphIsBiconnectedEnough) {
  // Every node should have degree >= 2 (no single-link cut at any site) and
  // every pair should admit 2 node-disjoint paths.
  const Graph g = overlay_graph(continental_us());
  for (NodeIndex n = 0; n < g.num_nodes(); ++n) {
    EXPECT_GE(g.neighbors(n).size(), 2u) << "node " << n;
  }
  for (NodeIndex a = 0; a < g.num_nodes(); ++a) {
    for (NodeIndex b = static_cast<NodeIndex>(a + 1); b < g.num_nodes(); ++b) {
      EXPECT_GE(k_node_disjoint_paths(g, a, b, 2).size(), 2u)
          << "pair " << a << "," << b;
    }
  }
}

TEST(GlobalSites, Connected) {
  const Graph g = overlay_graph(global_sites());
  for (NodeIndex b = 1; b < g.num_nodes(); ++b) {
    EXPECT_TRUE(shortest_path(g, 0, b).has_value());
  }
}

TEST(BuildDualIsp, CreatesSymmetricBackbones) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{1}};
  const BackboneMap m = continental_us();
  DualIspOptions opts;
  const BuiltUnderlay u = build_dual_isp(inet, m, opts);
  EXPECT_EQ(u.hosts.size(), 12u);
  EXPECT_EQ(inet.num_routers(), 24u);
  EXPECT_EQ(inet.num_links(), 2 * m.edges.size());
  for (const auto h : u.hosts) EXPECT_EQ(inet.attachments(h), 2u);
}

TEST(BuildDualIsp, SkippedEdgesAreAbsent) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{2}};
  const BackboneMap m = continental_us();
  DualIspOptions opts;
  opts.skip_in_isp_a = {0, 1};
  opts.skip_in_isp_b = {2};
  const BuiltUnderlay u = build_dual_isp(inet, m, opts);
  EXPECT_EQ(u.links_a[0], net::kInvalidLink);
  EXPECT_EQ(u.links_a[1], net::kInvalidLink);
  EXPECT_NE(u.links_a[2], net::kInvalidLink);
  EXPECT_EQ(u.links_b[2], net::kInvalidLink);
  EXPECT_EQ(inet.num_links(), 2 * m.edges.size() - 3);
}

TEST(BuildDualIsp, HostsReachEachOtherOnEitherIsp) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{3}};
  const BackboneMap m = continental_us();
  const BuiltUnderlay u = build_dual_isp(inet, m, DualIspOptions{});
  // NYC (0) to SEA (11), pinned to each ISP.
  const auto via_a = inet.path_latency(u.hosts[0], 0, u.hosts[11], 0);
  const auto via_b = inet.path_latency(u.hosts[0], 1, u.hosts[11], 1);
  ASSERT_TRUE(via_a.has_value());
  ASSERT_TRUE(via_b.has_value());
  EXPECT_NEAR(via_a->to_millis_f(), via_b->to_millis_f(), 0.5);
  // Cross-ISP with no peering: unreachable.
  EXPECT_FALSE(inet.path_latency(u.hosts[0], 0, u.hosts[11], 1).has_value());
}

TEST(BuildDualIsp, PeeringEnablesCrossIspPaths) {
  sim::Simulator sim;
  net::Internet inet{sim, sim::Rng{4}};
  const BackboneMap m = continental_us();
  DualIspOptions opts;
  opts.peering_cities = {0, 4};  // NYC, CHI
  const BuiltUnderlay u = build_dual_isp(inet, m, opts);
  EXPECT_TRUE(inet.path_latency(u.hosts[0], 0, u.hosts[11], 1).has_value());
}

TEST(Dissemination, KDisjointEdgesCoverKPaths) {
  const Graph g = overlay_graph(continental_us());
  const auto edges = k_disjoint_edges(g, 0, 9, 2);  // NYC -> LAX
  std::vector<bool> none(g.num_nodes(), false);
  EXPECT_TRUE(reachable_in_subgraph(g, edges, 0, 9, none));
  // Killing any single interior node leaves the pair connected.
  for (NodeIndex n = 1; n < g.num_nodes(); ++n) {
    if (n == 9) continue;
    std::vector<bool> down(g.num_nodes(), false);
    down[n] = true;
    EXPECT_TRUE(reachable_in_subgraph(g, edges, 0, 9, down)) << "node " << n;
  }
}

TEST(Dissemination, AllEdgesIsWholeGraph) {
  const Graph g = overlay_graph(continental_us());
  EXPECT_EQ(all_edges(g).size(), g.num_edges());
}

TEST(Dissemination, GraphAddsTargetedFanIn) {
  // NYC (0) -> DEN (7): Denver has degree 5, so there is room to add
  // last-hop diversity beyond the two disjoint paths.
  const Graph g = overlay_graph(continental_us());
  DissemOptions opts;
  opts.dst_fanin = 2;
  const auto base = k_disjoint_edges(g, 0, 7, 2);
  const auto dg = dissemination_graph(g, 0, 7, opts);
  EXPECT_GT(dg.size(), base.size());
  EXPECT_LT(dg.size(), g.num_edges());  // far cheaper than flooding
  // Destination has more incident edges in the dissemination graph.
  const auto incident = [&](const EdgeSet& es) {
    std::size_t c = 0;
    for (const auto e : es) {
      if (g.edge(e).u == 7 || g.edge(e).v == 7) ++c;
    }
    return c;
  };
  EXPECT_GT(incident(dg), incident(base));
  std::vector<bool> none(g.num_nodes(), false);
  EXPECT_TRUE(reachable_in_subgraph(g, dg, 0, 7, none));
}

TEST(Dissemination, SrcFanoutToo) {
  // DEN (7) -> MIA (3): fan out around the (well-connected) source.
  const Graph g = overlay_graph(continental_us());
  DissemOptions opts;
  opts.dst_fanin = 0;
  opts.src_fanout = 2;
  const auto dg = dissemination_graph(g, 7, 3, opts);
  const auto base = k_disjoint_edges(g, 7, 3, 2);
  std::size_t src_edges_base = 0, src_edges_dg = 0;
  for (const auto e : base) {
    if (g.edge(e).u == 7 || g.edge(e).v == 7) ++src_edges_base;
  }
  for (const auto e : dg) {
    if (g.edge(e).u == 7 || g.edge(e).v == 7) ++src_edges_dg;
  }
  EXPECT_GT(src_edges_dg, src_edges_base);
}

TEST(Dissemination, Degree2EndpointsDegradeGracefully) {
  // NYC (0) and LAX (9) both have degree 2: the two disjoint paths already
  // use every adjacent edge, so the dissemination graph equals them.
  const Graph g = overlay_graph(continental_us());
  DissemOptions opts;
  opts.dst_fanin = 3;
  opts.src_fanout = 3;
  EXPECT_EQ(dissemination_graph(g, 0, 9, opts), k_disjoint_edges(g, 0, 9, 2));
}

}  // namespace
}  // namespace son::topo
