#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

namespace son::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string m(len, 'x');
    Sha256 a;
    a.update(m);
    EXPECT_EQ(a.finish(), Sha256::hash(m)) << len;
  }
}

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// RFC 4231 test case 2.
TEST(Hmac, Rfc4231Case2) {
  const auto key = bytes("Jefe");
  const auto msg = bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto msg = bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6: key longer than block size.
TEST(Hmac, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto msg = bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, TagTruncationIsPrefix) {
  const auto key = bytes("k");
  const auto msg = bytes("m");
  const Digest d = hmac_sha256(key, msg);
  const Tag t = hmac_tag(key, msg);
  EXPECT_TRUE(std::equal(t.begin(), t.end(), d.begin()));
}

TEST(Hmac, VerifyTagConstantTimeEquality) {
  const auto key = bytes("key");
  const auto msg = bytes("message");
  const Tag t = hmac_tag(key, msg);
  EXPECT_TRUE(verify_tag(t, t));
  Tag bad = t;
  bad[15] ^= 1;
  EXPECT_FALSE(verify_tag(t, bad));
}

TEST(Keys, PairKeySymmetric) {
  Key master{};
  master[0] = 0x42;
  EXPECT_EQ(derive_pair_key(master, 3, 7), derive_pair_key(master, 7, 3));
  EXPECT_NE(derive_pair_key(master, 3, 7), derive_pair_key(master, 3, 8));
}

TEST(Keys, TableSignVerifyRoundTrip) {
  Key master{};
  master[5] = 0x99;
  KeyTable alice(master, 0, 4);
  KeyTable bob(master, 1, 4);
  const auto msg = bytes("attack at dawn");
  const Tag t = alice.sign(1, msg);
  EXPECT_TRUE(bob.verify(0, msg, t));
  // A third node's key fails to verify.
  KeyTable carol(master, 2, 4);
  EXPECT_FALSE(carol.verify(0, msg, t));
  // Tampered message fails.
  auto tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(bob.verify(0, tampered, t));
}

TEST(Keys, DifferentMastersDisagree) {
  Key m1{}, m2{};
  m2[31] = 1;
  EXPECT_NE(derive_pair_key(m1, 0, 1), derive_pair_key(m2, 0, 1));
}

}  // namespace
}  // namespace son::crypto
