#include <gtest/gtest.h>

#include <random>

#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

namespace son::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split at " << split;
  }
}

// FIPS 180-4 two-block (896-bit) message.
TEST(Sha256, TwoBlock896BitMessage) {
  EXPECT_EQ(to_hex(Sha256::hash("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string m(len, 'x');
    Sha256 a;
    a.update(m);
    EXPECT_EQ(a.finish(), Sha256::hash(m)) << len;
  }
}

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// RFC 4231 test case 2.
TEST(Hmac, Rfc4231Case2) {
  const auto key = bytes("Jefe");
  const auto msg = bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto msg = bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6: key longer than block size.
TEST(Hmac, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto msg = bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 4: 25-byte incrementing key, 50-byte 0xcd data.
TEST(Hmac, Rfc4231Case4) {
  std::vector<std::uint8_t> key(25);
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i + 1);
  const std::vector<std::uint8_t> msg(50, 0xcd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// RFC 4231 test case 5: 128-bit truncated output — exactly our Tag width.
TEST(Hmac, Rfc4231Case5Truncated) {
  const std::vector<std::uint8_t> key(20, 0x0c);
  const auto msg = bytes("Test With Truncation");
  const Tag t = hmac_tag(key, msg);
  std::string hex;
  for (const auto b : t) {
    static const char* digits = "0123456789abcdef";
    hex += digits[b >> 4];
    hex += digits[b & 0xf];
  }
  EXPECT_EQ(hex, "a3b6167473100ee06e0c796c2955552b");
}

// RFC 4231 test case 7: key AND data both longer than the block size.
TEST(Hmac, Rfc4231Case7) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto msg = bytes(
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, TagTruncationIsPrefix) {
  const auto key = bytes("k");
  const auto msg = bytes("m");
  const Digest d = hmac_sha256(key, msg);
  const Tag t = hmac_tag(key, msg);
  EXPECT_TRUE(std::equal(t.begin(), t.end(), d.begin()));
}

TEST(Hmac, VerifyTagConstantTimeEquality) {
  const auto key = bytes("key");
  const auto msg = bytes("message");
  const Tag t = hmac_tag(key, msg);
  EXPECT_TRUE(verify_tag(t, t));
  Tag bad = t;
  bad[15] ^= 1;
  EXPECT_FALSE(verify_tag(t, bad));
}

TEST(Keys, PairKeySymmetric) {
  Key master{};
  master[0] = 0x42;
  EXPECT_EQ(derive_pair_key(master, 3, 7), derive_pair_key(master, 7, 3));
  EXPECT_NE(derive_pair_key(master, 3, 7), derive_pair_key(master, 3, 8));
}

TEST(Keys, TableSignVerifyRoundTrip) {
  Key master{};
  master[5] = 0x99;
  KeyTable alice(master, 0, 4);
  KeyTable bob(master, 1, 4);
  const auto msg = bytes("attack at dawn");
  const Tag t = alice.sign(1, msg);
  EXPECT_TRUE(bob.verify(0, msg, t));
  // A third node's key fails to verify.
  KeyTable carol(master, 2, 4);
  EXPECT_FALSE(carol.verify(0, msg, t));
  // Tampered message fails.
  auto tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(bob.verify(0, tampered, t));
}

TEST(Keys, DifferentMastersDisagree) {
  Key m1{}, m2{};
  m2[31] = 1;
  EXPECT_NE(derive_pair_key(m1, 0, 1), derive_pair_key(m2, 0, 1));
}

// ---- Kernel dispatch equivalence ---------------------------------------------

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

// The dispatched kernel (SHA-NI where the CPU has it, otherwise the scalar
// fallback) must produce the same digest as the portable scalar kernel for
// every message length across the padding boundaries — this is what makes
// the kernel choice invisible to every tag and golden hash in the repo.
TEST(Sha256Dispatch, KernelsAgreeOnAllLengthsThrough4096) {
  std::mt19937_64 rng{0xD15EA5E};
  const auto check = [&](std::size_t len) {
    const auto m = random_bytes(rng, len);
    Sha256 scalar{Sha256Kernel::kScalar};
    scalar.update(m);
    Sha256 dispatched{Sha256Kernel::kShaNi};  // falls back to scalar if unsupported
    dispatched.update(m);
    EXPECT_EQ(scalar.finish(), dispatched.finish()) << "len=" << len;
  };
  for (std::size_t len = 0; len <= 256; ++len) check(len);
  for (const std::size_t len : {300u, 511u, 512u, 513u, 1000u, 1200u, 2048u, 4095u, 4096u}) {
    check(len);
  }
}

TEST(Sha256Dispatch, ReportsAKnownKernelName) {
  const std::string name = sha256_kernel_name();
  EXPECT_TRUE(name == "scalar" || name == "sha-ni") << name;
  if (!sha256_shani_supported()) EXPECT_EQ(name, "scalar");
}

TEST(Sha256Dispatch, SetKernelFallsBackWhenUnsupported) {
  const Sha256Kernel before = sha256_kernel();
  const Sha256Kernel installed = set_sha256_kernel(Sha256Kernel::kShaNi);
  if (!sha256_shani_supported()) EXPECT_EQ(installed, Sha256Kernel::kScalar);
  EXPECT_EQ(sha256_kernel(), installed);
  set_sha256_kernel(before);
}

TEST(Sha256Dispatch, ResumeFromMidstateMatchesOneShot) {
  // reset_from on a captured chaining state continues exactly where the
  // donor hash stopped — the primitive under the HMAC midstate cache.
  std::mt19937_64 rng{0xBEEF};
  const auto m = random_bytes(rng, 320);
  for (const std::size_t blocks : {1u, 2u, 4u}) {
    // Absorb the prefix through the free compressor (no padding), capture
    // the chaining state, and resume a fresh hasher from it.
    Sha256State st = kSha256Iv;
    sha256_compress(st, m.data(), blocks);
    Sha256 resumed;
    resumed.reset_from(st, blocks);
    resumed.update(std::span{m.data() + blocks * 64, m.size() - blocks * 64});
    EXPECT_EQ(resumed.finish(), Sha256::hash(m)) << blocks;
  }
}

// ---- HMAC midstate equivalence -----------------------------------------------

// HmacKey (midstate-cached) and the stateless reference must agree for every
// message length and for every head/body split of the same bytes — two-span
// streaming is defined as HMAC over the concatenation.
TEST(HmacMidstate, MatchesStatelessReferenceAcrossLengths) {
  std::mt19937_64 rng{0xFACADE};
  const auto key = random_bytes(rng, 32);
  const HmacKey cached{std::span<const std::uint8_t>{key}};
  const auto check = [&](std::size_t len) {
    const auto m = random_bytes(rng, len);
    const Digest ref = hmac_sha256(key, m);
    EXPECT_EQ(cached.mac(m), ref) << "len=" << len;
    // Every split of m into head||body gives the same digest (sample the
    // splits for long messages; exhaustive for short ones).
    const std::size_t step = len <= 80 ? 1 : 97;
    for (std::size_t cut = 0; cut <= len; cut += step) {
      EXPECT_EQ(cached.mac(std::span{m.data(), cut},
                           std::span{m.data() + cut, len - cut}),
                ref)
          << "len=" << len << " cut=" << cut;
    }
  };
  for (std::size_t len = 0; len <= 130; ++len) check(len);
  for (const std::size_t len : {200u, 1200u, 4096u}) check(len);
}

TEST(HmacMidstate, KernelPinnedKeysAgree) {
  std::mt19937_64 rng{0x5EED};
  const auto key = random_bytes(rng, 32);
  const HmacKey scalar{std::span<const std::uint8_t>{key}, Sha256Kernel::kScalar};
  const HmacKey shani{std::span<const std::uint8_t>{key}, Sha256Kernel::kShaNi};
  for (const std::size_t len : {0u, 23u, 55u, 56u, 64u, 65u, 333u, 1200u}) {
    const auto m = random_bytes(rng, len);
    EXPECT_EQ(scalar.mac(m), shani.mac(m)) << len;
  }
}

TEST(HmacMidstate, LongKeysHashedLikeReference) {
  std::mt19937_64 rng{0xABCD};
  for (const std::size_t key_len : {0u, 1u, 63u, 64u, 65u, 131u}) {
    const auto key = random_bytes(rng, key_len);
    const HmacKey cached{std::span<const std::uint8_t>{key}};
    const auto m = random_bytes(rng, 77);
    EXPECT_EQ(cached.mac(m), hmac_sha256(key, m)) << key_len;
  }
}

TEST(HmacMidstate, CheckAcceptsTagAndRejectsTamper) {
  std::mt19937_64 rng{0x7777};
  const auto key = random_bytes(rng, 32);
  const HmacKey cached{std::span<const std::uint8_t>{key}};
  const auto m = random_bytes(rng, 99);
  const std::span<const std::uint8_t> head{m.data(), 64};
  const std::span<const std::uint8_t> body{m.data() + 64, m.size() - 64};
  const Tag t = cached.tag(head, body);
  EXPECT_TRUE(cached.check(head, body, t));
  Tag bad = t;
  bad[0] ^= 1;
  EXPECT_FALSE(cached.check(head, body, bad));
}

// ---- KeyTable fast-path equivalence ------------------------------------------

TEST(Keys, TwoSpanSignMatchesSingleSpan) {
  Key master{};
  master[7] = 0x31;
  KeyTable t(master, 0, 4);
  std::mt19937_64 rng{0x1234};
  const auto m = random_bytes(rng, 200);
  const Tag whole = t.sign(2, std::span<const std::uint8_t>{m});
  for (const std::size_t cut : {0u, 1u, 64u, 128u, 200u}) {
    EXPECT_EQ(t.sign(2, std::span{m.data(), cut}, std::span{m.data() + cut, m.size() - cut}),
              whole)
        << cut;
  }
  EXPECT_TRUE(t.verify(2, std::span{m.data(), 64ul}, std::span{m.data() + 64, m.size() - 64},
                       whole));
}

TEST(Keys, MidstateKnobIsBitIdentical) {
  Key master{};
  master[1] = 0x52;
  KeyTable fast(master, 0, 4);
  KeyTable seed(master, 0, 4);
  seed.set_midstate(false);
  EXPECT_TRUE(fast.midstate());
  EXPECT_FALSE(seed.midstate());
  std::mt19937_64 rng{0x4242};
  for (const std::size_t len : {0u, 23u, 64u, 87u, 1200u}) {
    const auto m = random_bytes(rng, len);
    const std::span<const std::uint8_t> sp{m};
    EXPECT_EQ(fast.sign(1, sp), seed.sign(1, sp)) << len;
    const MacContext fast_ctx = fast.context(1);
    const MacContext seed_ctx = seed.context(1);
    EXPECT_TRUE(fast_ctx.valid());
    EXPECT_TRUE(seed_ctx.valid());
    EXPECT_EQ(fast_ctx.sign(sp), seed_ctx.sign(sp)) << len;
    EXPECT_TRUE(seed_ctx.verify(sp, {}, fast.sign(1, sp)));
  }
}

}  // namespace
}  // namespace son::crypto
