#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace son::sim {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.01);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, QuantileClampsOutOfRange) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 2.0);
}

TEST(SampleSet, EmptyReturnsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(SampleSet, FractionAtMost) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.fraction_at_most(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(100.0), 1.0);
}

TEST(SampleSet, AddDurationUsesMillis) {
  SampleSet s;
  s.add(sim::Duration::milliseconds(7));
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSet, SummaryMentionsFields) {
  SampleSet s;
  s.add(1.0);
  const std::string sum = s.summary("ms");
  EXPECT_NE(sum.find("n=1"), std::string::npos);
  EXPECT_NE(sum.find("p99"), std::string::npos);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
}

TEST(Histogram, RenderProducesLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string out = h.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace son::sim
