// Regression tests for protocol-timer bugs: each test pins the corrected
// behavior and fails against the pre-fix implementation.
//
//  - ReorderBuffer armed its skip timer from the LOWEST-seq held entry, not
//    the longest-waiting one, so a late low-seq retransmission pushed the
//    effective hold deadline of everything already waiting.
//  - ReliableLinkEndpoint re-armed its retransmit timer a full rto() from
//    "now", so an entry could wait up to ~2x its timeout behind the sweep;
//    retransmissions to a dead peer also repeated at a constant rate forever.
//  - send_ack() enumerated every hole below recv_max_ with no cap, producing
//    unbounded nack lists (and an O(window) scan) after a burst loss.
//  - DedupCache probed its hash set twice per message on the hot path.
#include <gtest/gtest.h>

#include <set>

#include "fake_link.hpp"
#include "net/loss_model.hpp"
#include "overlay/dedup.hpp"
#include "overlay/reliable_link.hpp"
#include "overlay/reorder_buffer.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using son::test::FakeLinkPair;
using son::test::make_msg;

// ---- ReorderBuffer hold deadline -------------------------------------------

TEST(ReorderBufferBugfix, SkipDeadlineFollowsOldestArrivalNotLowestSeq) {
  Simulator sim;
  std::vector<std::pair<std::uint64_t, std::int64_t>> delivered;
  ReorderBuffer buf{sim, 200_ms, [&](const Message& m) {
                      delivered.emplace_back(m.hdr.flow_seq, sim.now().ns());
                    }};
  Message m5;
  m5.hdr.flow_seq = 5;
  buf.push(m5);  // t=0: held behind the gap 1..4
  sim.schedule(190_ms, [&buf]() {
    Message m2;
    m2.hdr.flow_seq = 2;
    buf.push(m2);  // late low-seq arrival, 10ms before seq 5's deadline
  });

  sim.run_for(199_ms);
  EXPECT_TRUE(delivered.empty());

  // Seq 5 has waited max_hold at t=200ms: the buffer must give up on the
  // gaps below it THEN, delivering 2 and 5 in order. The buggy version
  // re-derived the deadline from the lowest held seq (2, arrived t=190ms)
  // and sat on both messages until t=390ms.
  sim.run_for(2_ms);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].first, 2u);
  EXPECT_EQ(delivered[1].first, 5u);
  EXPECT_EQ(delivered[0].second, 200'000'000);
  EXPECT_EQ(delivered[1].second, 200'000'000);
  EXPECT_EQ(buf.stats().skipped_missing, 3u);  // 1, 3, 4
}

// ---- Reliable link: RTO timing ---------------------------------------------

struct ProtoFixture {
  Simulator sim;
  FakeLinkPair pair;
  std::unique_ptr<LinkProtocolEndpoint> a;
  std::unique_ptr<LinkProtocolEndpoint> b;

  ProtoFixture(LinkProtocol proto, Duration one_way, double loss,
               LinkProtocolConfig cfg = {}, std::uint64_t seed = 99)
      : pair{sim, one_way, loss, seed} {
    a = make_link_endpoint(proto, pair.ctx_a(), cfg);
    b = make_link_endpoint(proto, pair.ctx_b(), cfg);
    pair.attach(a.get(), b.get());
  }

  [[nodiscard]] ReliableLinkEndpoint& reliable_a() {
    auto* rl = dynamic_cast<ReliableLinkEndpoint*>(a.get());
    EXPECT_NE(rl, nullptr);
    return *rl;
  }
};

/// Drops every frame transmitted before `until`.
class LossUntil final : public net::LossModel {
 public:
  explicit LossUntil(sim::TimePoint until) : until_{until} {}
  bool lose(sim::TimePoint now, sim::Rng&) override { return now < until_; }
  [[nodiscard]] double average_loss_rate() const override { return 0.0; }

 private:
  sim::TimePoint until_;
};

TEST(ReliableBugfix, RtoHonorsEachEntrysOwnDeadline) {
  // One-way 5ms -> RTO 20ms. Both packets are lost on the first pass; the
  // outage ends before either timeout expires.
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 0.0, {}, 21};
  f.pair.set_loss_a_to_b(std::make_unique<LossUntil>(sim::TimePoint::from_ns(10'000'000)));

  f.a->send(make_msg(1, f.sim.now()));
  f.sim.schedule(1_ms, [&f]() { f.a->send(make_msg(2, f.sim.now())); });

  // Packet 1 times out at t=20ms, packet 2 at t=21ms; the retransmissions
  // arrive by t=26ms. The buggy sweep re-armed a full RTO from its own fire
  // time, so packet 2 (19ms old at the t=20ms sweep) was skipped and only
  // retransmitted at t=40ms.
  f.sim.run_for(28_ms);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 2u);
  EXPECT_EQ(f.reliable_a().stats().retransmissions, 2u);
}

TEST(ReliableBugfix, BackoffBoundsRetransmissionsToDeadPeer) {
  // Blackholed link: nothing in either direction. Per-entry exponential
  // backoff (20ms doubling, capped at 2s) probes ~10 times in 10s. The
  // pre-fix sender retransmitted every RTO forever: ~500 sends.
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 1.0, {}, 22};
  f.a->send(make_msg(1, f.sim.now()));
  f.sim.run_for(10_s);
  EXPECT_EQ(f.reliable_a().stats().data_sent, 1u);
  EXPECT_GE(f.reliable_a().stats().retransmissions, 8u);
  EXPECT_LE(f.reliable_a().stats().retransmissions, 14u);
}

TEST(ReliableBugfix, SackStopsRtoForPacketsHeldBeyondAHole) {
  // Lose exactly the first data frame. Seqs 2..5 reach the peer but stay
  // uncovered by the cumulative ack until seq 1 is recovered. The ack's
  // exhaustive nack list proves they arrived, so the sender must retire
  // them instead of firing their RTOs (the pre-fix sender retransmitted
  // all four as duplicates).
  class FirstFrameLoss final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return std::exchange(first_, false); }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    bool first_ = true;
  };
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 0.0, {}, 23};
  f.pair.set_loss_a_to_b(std::make_unique<FirstFrameLoss>());

  for (std::uint64_t s = 1; s <= 5; ++s) f.a->send(make_msg(s, f.sim.now()));
  f.sim.run_for(5_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 5u);
  EXPECT_EQ(f.reliable_a().stats().retransmissions, 1u);  // seq 1 only
  EXPECT_EQ(f.reliable_a().stats().sacked, 4u);           // 2..5 retired early
  auto* rb = dynamic_cast<ReliableLinkEndpoint*>(f.b.get());
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(rb->stats().duplicates_received, 0u);
}

// ---- Reliable link: nack enumeration ---------------------------------------

/// LinkContext that records outgoing frames instead of transmitting them.
class CaptureCtx final : public LinkContext {
 public:
  explicit CaptureCtx(Simulator& sim) : sim_{sim} {}

  Simulator& simulator() override { return sim_; }
  sim::Rng& rng() override { return rng_; }
  void send_frame(LinkFrame f) override { sent.push_back(std::move(f)); }
  bool deliver_up(Message, LinkBit) override { return true; }
  [[nodiscard]] Duration rtt_estimate() const override { return 10_ms; }
  [[nodiscard]] NodeId self() const override { return 1; }
  [[nodiscard]] NodeId peer() const override { return 0; }
  [[nodiscard]] LinkBit link() const override { return 0; }
  [[nodiscard]] bool authenticate() const override { return false; }
  [[nodiscard]] const crypto::KeyTable* keys() const override { return nullptr; }
  void count_protocol_drop(LinkProtocol) override {}

  std::vector<LinkFrame> sent;

 private:
  Simulator& sim_;
  sim::Rng rng_{1};
};

LinkFrame data_frame(std::uint64_t seq, sim::TimePoint now) {
  LinkFrame df;
  df.link = 0;
  df.from = 0;
  df.to = 1;
  df.proto = LinkProtocol::kReliable;
  df.type = FrameType::kData;
  df.seq = seq;
  df.msg = make_msg(seq, now);
  return df;
}

TEST(ReliableBugfix, NackListWalksGapsAndIsCapped) {
  Simulator sim;
  CaptureCtx ctx{sim};
  ReliableLinkEndpoint ep{ctx, {}};

  // A huge reordering gap: seqs 201..300 arrive, 1..200 are missing. The
  // pre-fix ack enumerated all 200 holes into one frame.
  for (std::uint64_t s = 201; s <= 300; ++s) ep.on_frame(data_frame(s, sim.now()));
  sim.run_for(5_ms);  // let the delayed ack fire

  ASSERT_EQ(ctx.sent.size(), 1u);
  const LinkFrame& ack = ctx.sent[0];
  EXPECT_EQ(ack.type, FrameType::kAck);
  EXPECT_EQ(ack.cum_ack, 0u);
  EXPECT_EQ(ack.seq, 300u);  // highest seen, for SACK inference
  ASSERT_EQ(ack.ids.size(), 64u);  // capped, lowest holes first
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(ack.ids[i], i + 1);
}

TEST(ReliableBugfix, NackListIsExactForSmallGaps) {
  Simulator sim;
  CaptureCtx ctx{sim};
  ReliableLinkEndpoint ep{ctx, {}};

  for (std::uint64_t s = 1; s <= 15; ++s) {
    if (s == 5 || s == 10) continue;
    ep.on_frame(data_frame(s, sim.now()));
  }
  sim.run_for(5_ms);

  ASSERT_EQ(ctx.sent.size(), 1u);
  const LinkFrame& ack = ctx.sent[0];
  EXPECT_EQ(ack.cum_ack, 4u);
  EXPECT_EQ(ack.seq, 15u);
  EXPECT_EQ(ack.ids, (std::vector<std::uint64_t>{5, 10}));
}

/// Drops a→b frames by transmission index (1-based).
class DropFrameRange final : public net::LossModel {
 public:
  DropFrameRange(std::uint64_t first, std::uint64_t last) : first_{first}, last_{last} {}
  bool lose(sim::TimePoint, sim::Rng&) override {
    const std::uint64_t i = ++count_;
    return i >= first_ && i <= last_;
  }
  [[nodiscard]] double average_loss_rate() const override { return 0.0; }

 private:
  std::uint64_t first_, last_, count_ = 0;
};

TEST(ReliableBugfix, BurstLossRecoversThroughSuccessiveCappedNacks) {
  // 150 consecutive losses: far more holes than one capped ack can carry.
  // Recovery must complete across several ack rounds, each nacking the 64
  // lowest outstanding holes.
  ProtoFixture f{LinkProtocol::kReliable, 5_ms, 0.0, {}, 24};
  f.pair.set_loss_a_to_b(std::make_unique<DropFrameRange>(10, 159));

  const std::uint64_t n = 300;
  for (std::uint64_t s = 1; s <= n; ++s) f.a->send(make_msg(s, f.sim.now()));
  f.sim.run_for(10_s);

  std::set<std::uint64_t> seqs;
  for (const auto& m : f.pair.ctx_b().delivered) {
    EXPECT_TRUE(seqs.insert(m.hdr.flow_seq).second) << "duplicate " << m.hdr.flow_seq;
  }
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(n));
  EXPECT_GE(f.reliable_a().stats().retransmissions, 150u);  // every loss recovered
}

// ---- DedupCache ------------------------------------------------------------

TEST(DedupBugfix, EvictionAccountingAndReadmission) {
  DedupCache d{4};
  for (std::uint64_t id = 1; id <= 4; ++id) EXPECT_FALSE(d.seen_or_insert(id));
  EXPECT_TRUE(d.seen_or_insert(1));  // still resident: no insertion
  EXPECT_EQ(d.evictions(), 0u);
  EXPECT_FALSE(d.seen_or_insert(5));  // pushes 1 out
  EXPECT_EQ(d.evictions(), 1u);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_FALSE(d.seen_or_insert(1));  // evicted id is readmitted as new
  EXPECT_EQ(d.evictions(), 2u);       // ...displacing 2
}

}  // namespace
}  // namespace son::overlay
