// The son::exp contract: the ParallelRunner returns per-trial results in
// trial-index order and the aggregated report is bit-identical at any
// --jobs value; Options::parse strips only its own flags; Json output is
// deterministic (insertion-ordered keys, shortest round-trip numbers).
#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/json.hpp"
#include "exp/options.hpp"
#include "exp/runner.hpp"
#include "sim/random.hpp"

namespace son::exp {
namespace {

TEST(ParallelRunner, ResultsComeBackInTrialOrder) {
  std::vector<Trial> trials;
  for (int i = 0; i < 20; ++i) {
    trials.push_back(Trial{"t" + std::to_string(i), [i] {
                             // Later trials finish first if order were by
                             // completion time.
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds((20 - i) % 5));
                             Metrics m;
                             m.scalar("index", static_cast<double>(i));
                             return m;
                           }});
  }
  const ParallelRunner runner{4};
  const auto results = runner.run(trials);
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)].scalars().at("index"),
                     static_cast<double>(i));
  }
}

TEST(ParallelRunner, ActuallyRunsTrialsConcurrently) {
  // Two trials that each block until the other has started can only finish
  // if two pool threads run them simultaneously.
  std::atomic<int> arrived{0};
  auto gate = [&arrived] {
    arrived.fetch_add(1);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw std::runtime_error("peer trial never started: runner is serial");
      }
      std::this_thread::yield();
    }
    return Metrics{};
  };
  const ParallelRunner runner{2};
  const auto results = runner.run({Trial{"a", gate}, Trial{"b", gate}});
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ParallelRunner, FirstTrialExceptionPropagates) {
  std::vector<Trial> trials;
  trials.push_back(Trial{"ok", [] { return Metrics{}; }});
  trials.push_back(Trial{"boom", []() -> Metrics {
                           throw std::runtime_error("trial failed");
                         }});
  const ParallelRunner runner{2};
  EXPECT_THROW((void)runner.run(trials), std::runtime_error);
}

TEST(ParallelRunner, ZeroJobsMeansHardwareConcurrency) {
  const ParallelRunner runner{0};
  EXPECT_GE(runner.jobs(), 1u);
}

Options quiet_options(unsigned jobs) {
  Options o;
  o.bench = "selftest";
  o.reps = 3;
  o.jobs = jobs;
  o.seed_base = 100;
  o.write_json = false;
  return o;
}

Experiment make_experiment(const Options& o) {
  Experiment ex{o};
  for (const int cell : {0, 1, 2}) {
    Json params = Json::object();
    params["cell"] = static_cast<std::int64_t>(cell);
    ex.add_cell("cell" + std::to_string(cell), std::move(params),
                [cell](std::uint64_t seed) {
                  // Seed-dependent pseudo-measurements standing in for a
                  // simulation: deterministic given (cell, seed).
                  sim::Rng rng{seed * 97 + static_cast<std::uint64_t>(cell)};
                  Metrics m;
                  m.scalar("value", rng.uniform() * 1000.0);
                  auto& lat = m.samples("lat");
                  for (int i = 0; i < 200; ++i) lat.add(rng.exponential(25.0));
                  auto& h = m.hist("lat_hist", 0.0, 250.0, 10);
                  for (const double v : lat.sorted_values()) h.add(v);
                  // Timings are machine-dependent on purpose; they must stay
                  // out of the deterministic document.
                  m.timing("fake_cpu_us", rng.uniform());
                  return m;
                });
  }
  return ex;
}

TEST(Experiment, AggregateIsIdenticalAtAnyJobCount) {
  const Report serial = make_experiment(quiet_options(1)).run();
  const Report wide = make_experiment(quiet_options(8)).run();
  EXPECT_EQ(serial.jobs(), 1u);
  EXPECT_EQ(wide.jobs(), 8u);
  EXPECT_EQ(serial.results_json(), wide.results_json());
  // And it really did run the full grid.
  EXPECT_EQ(serial.total_trials(), 9u);
  EXPECT_EQ(serial.cell("cell1").trials(), 3u);
}

TEST(Experiment, ExplicitSeedListDrivesReplication) {
  Options o = quiet_options(2);
  o.seeds = {7, 8};
  const Report r = make_experiment(o).run();
  EXPECT_EQ(r.total_trials(), 6u);  // 3 cells x 2 seeds
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.cell(std::size_t{0}).seeds, (std::vector<std::uint64_t>{7, 8}));
}

TEST(Options, ParseStripsOnlyItsOwnFlags) {
  const char* raw[] = {"bench",  "--benchmark_filter=BM_Foo", "--reps", "5",
                       "--jobs", "3",  "--seed-base", "42",
                       "--quick", "--json-out", "/tmp/x.json", "--residual"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());

  const Options o = Options::parse(argc, argv.data(), "demo", 1, 1);
  EXPECT_EQ(o.bench, "demo");
  EXPECT_EQ(o.reps, 5);
  EXPECT_EQ(o.jobs, 3u);
  EXPECT_EQ(o.seed_base, 42u);
  EXPECT_TRUE(o.quick);
  EXPECT_EQ(o.json_out, "/tmp/x.json");
  EXPECT_EQ(o.json_path(), "/tmp/x.json");

  // Unrecognized args survive, in order, and argc shrank accordingly.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=BM_Foo");
  EXPECT_STREQ(argv[2], "--residual");
}

TEST(Options, SeedListAndDefaults) {
  const char* raw[] = {"bench", "--seeds", "5,9,12"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());

  const Options o = Options::parse(argc, argv.data(), "demo", 4, 1000);
  EXPECT_EQ(o.effective_reps(), 3);
  EXPECT_EQ(o.seed_for(0), 5u);
  EXPECT_EQ(o.seed_for(2), 12u);

  const char* raw2[] = {"bench"};
  std::vector<char*> argv2{const_cast<char*>(raw2[0])};
  int argc2 = 1;
  const Options d = Options::parse(argc2, argv2.data(), "demo", 4, 1000);
  EXPECT_EQ(d.effective_reps(), 4);
  EXPECT_EQ(d.seed_for(0), 1000u);
  EXPECT_EQ(d.seed_for(3), 1003u);
  EXPECT_EQ(d.json_path(), "BENCH_demo.json");
}

TEST(Json, InsertionOrderAndNumberFormat) {
  Json doc = Json::object();
  doc["zeta"] = 1.5;
  doc["alpha"] = 0.1;  // shortest round-trip, not 0.1000000000000000055...
  doc["count"] = std::uint64_t{18446744073709551615ull};
  doc["neg"] = std::int64_t{-3};
  doc["flag"] = true;
  doc["name"] = "x\"y\\z";
  Json arr = Json::array();
  arr.push_back(1.0);
  arr.push_back(2.5);
  doc["arr"] = std::move(arr);

  const std::string s = doc.dump();
  // Keys in insertion order, not sorted.
  EXPECT_LT(s.find("zeta"), s.find("alpha"));
  EXPECT_NE(s.find("\"alpha\": 0.1"), std::string::npos) << s;
  EXPECT_NE(s.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(s.find("\"neg\": -3"), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"x\\\"y\\\\z\""), std::string::npos) << s;
}

}  // namespace
}  // namespace son::exp
