#include "net/internet.hpp"

#include <gtest/gtest.h>

#include "net/failures.hpp"

namespace son::net {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

LinkConfig link_ms(std::int64_t ms) {
  LinkConfig cfg;
  cfg.prop_delay = Duration::milliseconds(ms);
  cfg.bandwidth_bps = 1e9;
  return cfg;
}

/// Triangle in one ISP: a-b direct (10ms) and a-c-b detour (5+5... uses 20ms).
struct Triangle {
  Simulator sim;
  Internet inet{sim, sim::Rng{42}};
  IspId isp;
  RouterId ra, rb, rc;
  LinkId ab, ac, cb;
  HostId ha, hb;

  Triangle() {
    isp = inet.add_isp("one");
    ra = inet.add_router(isp, "a");
    rb = inet.add_router(isp, "b");
    rc = inet.add_router(isp, "c");
    ab = inet.add_link(ra, rb, link_ms(10));
    ac = inet.add_link(ra, rc, link_ms(15));
    cb = inet.add_link(rc, rb, link_ms(15));
    ha = inet.add_host("ha");
    hb = inet.add_host("hb");
    inet.attach_host(ha, ra, link_ms(0));
    inet.attach_host(hb, rb, link_ms(0));
  }
};

TEST(Internet, DeliversOverShortestPath) {
  Triangle t;
  int got = 0;
  TimePoint when;
  t.inet.bind(t.hb, [&](const Datagram&) {
    ++got;
    when = t.sim.now();
  });
  Datagram d;
  d.src = t.ha;
  d.dst = t.hb;
  t.inet.send(d);
  t.sim.run();
  EXPECT_EQ(got, 1);
  // 10 ms propagation + 2 router hops of 50us + serialization epsilon.
  EXPECT_GE(when, TimePoint::zero() + 10_ms);
  EXPECT_LT(when, TimePoint::zero() + 11_ms);
}

TEST(Internet, PathLatencyMatchesTopology) {
  Triangle t;
  const auto lat = t.inet.path_latency(t.ha, kAnyAttach, t.hb, kAnyAttach);
  ASSERT_TRUE(lat.has_value());
  EXPECT_NEAR(lat->to_millis_f(), 10.1, 0.2);
}

TEST(Internet, PathRoutersReportsRoute) {
  Triangle t;
  const auto path = t.inet.path_routers(t.ha, kAnyAttach, t.hb, kAnyAttach);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<RouterId>{t.ra, t.rb}));
}

TEST(Internet, FailureDropsUntilConvergenceThenReroutes) {
  Triangle t;
  int got = 0;
  t.inet.bind(t.hb, [&](const Datagram&) { ++got; });

  // Cut the direct link at t=1s. Convergence delay is 40s.
  t.sim.schedule_at(TimePoint::zero() + 1_s, [&]() { t.inet.set_link_up(t.ab, false); });

  // Probe every second for 90 s.
  for (int i = 0; i < 90; ++i) {
    t.sim.schedule_at(TimePoint::zero() + Duration::seconds(i), [&]() {
      Datagram d;
      d.src = t.ha;
      d.dst = t.hb;
      t.inet.send(d);
    });
  }
  t.sim.run();
  // Sent 90: ~1 before the cut, then dropped during [1s, 41s) (stale route),
  // delivered again after convergence (~49 of them).
  EXPECT_EQ(t.inet.counters().sent, 90u);
  const auto stale = t.inet.counters().dropped[static_cast<int>(DropReason::kStaleRoute)];
  EXPECT_GE(stale, 38u);
  EXPECT_LE(stale, 41u);
  EXPECT_GE(got, 48);
}

TEST(Internet, ReroutesOverDetourAfterConvergence) {
  Triangle t;
  TimePoint when;
  int got = 0;
  t.inet.bind(t.hb, [&](const Datagram&) {
    ++got;
    when = t.sim.now();
  });
  t.inet.set_link_up(t.ab, false);
  // After convergence, the 30 ms detour through c carries traffic.
  t.sim.schedule_at(TimePoint::zero() + 50_s, [&]() {
    Datagram d;
    d.src = t.ha;
    d.dst = t.hb;
    t.inet.send(d);
  });
  t.sim.run();
  ASSERT_EQ(got, 1);
  EXPECT_NEAR((when - (TimePoint::zero() + 50_s)).to_millis_f(), 30.15, 0.5);
}

TEST(Internet, RepairAlsoTakesConvergenceTime) {
  Triangle t;
  t.inet.set_link_up(t.ab, false);
  t.sim.run();  // converge on the failure
  t.inet.set_link_up(t.ab, true);
  // Immediately after repair, routing still believes the link is down.
  const auto lat1 = t.inet.path_latency(t.ha, kAnyAttach, t.hb, kAnyAttach);
  ASSERT_TRUE(lat1.has_value());
  EXPECT_GT(lat1->to_millis_f(), 25.0);
  t.sim.run();  // converge on the repair
  const auto lat2 = t.inet.path_latency(t.ha, kAnyAttach, t.hb, kAnyAttach);
  ASSERT_TRUE(lat2.has_value());
  EXPECT_LT(lat2->to_millis_f(), 11.0);
}

TEST(Internet, NoRouteWhenPartitioned) {
  Triangle t;
  t.inet.set_link_up(t.ab, false);
  t.inet.set_link_up(t.ac, false);
  t.sim.run();  // converge
  Datagram d;
  d.src = t.ha;
  d.dst = t.hb;
  t.inet.send(d);
  t.sim.run();
  EXPECT_EQ(t.inet.counters().dropped[static_cast<int>(DropReason::kNoRoute)], 1u);
}

TEST(Internet, MultihomingPicksBestAttachment) {
  Simulator sim;
  Internet inet{sim, sim::Rng{1}};
  const IspId a = inet.add_isp("a");
  const IspId b = inet.add_isp("b");
  const RouterId ra1 = inet.add_router(a, "ra1");
  const RouterId ra2 = inet.add_router(a, "ra2");
  const RouterId rb1 = inet.add_router(b, "rb1");
  const RouterId rb2 = inet.add_router(b, "rb2");
  inet.add_link(ra1, ra2, link_ms(30));
  inet.add_link(rb1, rb2, link_ms(10));  // ISP b is faster
  const HostId h1 = inet.add_host("h1");
  const HostId h2 = inet.add_host("h2");
  inet.attach_host(h1, ra1, link_ms(0));
  inet.attach_host(h1, rb1, link_ms(0));
  inet.attach_host(h2, ra2, link_ms(0));
  inet.attach_host(h2, rb2, link_ms(0));

  const auto lat = inet.path_latency(h1, kAnyAttach, h2, kAnyAttach);
  ASSERT_TRUE(lat.has_value());
  EXPECT_LT(lat->to_millis_f(), 11.0);

  // Pinning to ISP a's attachments uses the slow backbone.
  const auto lat_a = inet.path_latency(h1, 0, h2, 0);
  ASSERT_TRUE(lat_a.has_value());
  EXPECT_GT(lat_a->to_millis_f(), 29.0);
}

TEST(Internet, IspOutageFailsOverViaOtherIsp) {
  Simulator sim;
  Internet inet{sim, sim::Rng{2}};
  const IspId a = inet.add_isp("a");
  const IspId b = inet.add_isp("b");
  const RouterId ra1 = inet.add_router(a, "ra1");
  const RouterId ra2 = inet.add_router(a, "ra2");
  const RouterId rb1 = inet.add_router(b, "rb1");
  const RouterId rb2 = inet.add_router(b, "rb2");
  inet.add_link(ra1, ra2, link_ms(10));
  inet.add_link(rb1, rb2, link_ms(20));
  const HostId h1 = inet.add_host("h1");
  const HostId h2 = inet.add_host("h2");
  inet.attach_host(h1, ra1, link_ms(0));
  inet.attach_host(h1, rb1, link_ms(0));
  inet.attach_host(h2, ra2, link_ms(0));
  inet.attach_host(h2, rb2, link_ms(0));

  inet.set_isp_up(a, false);
  sim.run();  // converge
  int got = 0;
  inet.bind(h2, [&](const Datagram&) { ++got; });
  Datagram d;
  d.src = h1;
  d.dst = h2;
  inet.send(d);
  sim.run();
  EXPECT_EQ(got, 1);  // went via ISP b
}

TEST(Internet, SendToSelfAttachedRouterPair) {
  // Hosts on the same router still get a route (empty router path).
  Simulator sim;
  Internet inet{sim, sim::Rng{3}};
  const IspId a = inet.add_isp("a");
  const RouterId r = inet.add_router(a, "r");
  const HostId h1 = inet.add_host("h1");
  const HostId h2 = inet.add_host("h2");
  inet.attach_host(h1, r, link_ms(1));
  inet.attach_host(h2, r, link_ms(1));
  int got = 0;
  inet.bind(h2, [&](const Datagram&) { ++got; });
  Datagram d;
  d.src = h1;
  d.dst = h2;
  inet.send(d);
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST(Internet, NoHandlerCountsDrop) {
  Triangle t;
  Datagram d;
  d.src = t.ha;
  d.dst = t.hb;  // hb has no handler bound
  t.inet.send(d);
  t.sim.run();
  EXPECT_EQ(t.inet.counters().dropped[static_cast<int>(DropReason::kNoHandler)], 1u);
}

TEST(Internet, PayloadRoundTrips) {
  Triangle t;
  std::string got;
  t.inet.bind(t.hb, [&](const Datagram& d) {
    ASSERT_NE(d.payload.get<std::string>(), nullptr);
    got = *d.payload.get<std::string>();
  });
  Datagram d;
  d.src = t.ha;
  d.dst = t.hb;
  d.payload = std::string{"hello overlay"};
  t.inet.send(d);
  t.sim.run();
  EXPECT_EQ(got, "hello overlay");
}

TEST(FailureScript, CutAndRestore) {
  Triangle t;
  FailureScript script{t.sim, t.inet};
  script.cut_link(TimePoint::zero() + 1_s, t.ab, TimePoint::zero() + 2_s);
  int got = 0;
  t.inet.bind(t.hb, [&](const Datagram&) { ++got; });
  // During the cut (and before convergence) the direct path blackholes.
  t.sim.schedule_at(TimePoint::zero() + 1500_ms, [&]() {
    Datagram d;
    d.src = t.ha;
    d.dst = t.hb;
    t.inet.send(d);
  });
  // Well after restore, traffic flows again.
  t.sim.schedule_at(TimePoint::zero() + 60_s, [&]() {
    Datagram d;
    d.src = t.ha;
    d.dst = t.hb;
    t.inet.send(d);
  });
  t.sim.run();
  EXPECT_EQ(got, 1);
}

TEST(FailureScript, LossBurstAffectsBothDirections) {
  Triangle t;
  FailureScript script{t.sim, t.inet};
  script.loss_burst(TimePoint::zero(), TimePoint::zero() + 10_s, t.ab, 1.0);
  int got = 0;
  t.inet.bind(t.hb, [&](const Datagram&) { ++got; });
  t.inet.bind(t.ha, [&](const Datagram&) { ++got; });
  Datagram d;
  d.src = t.ha;
  d.dst = t.hb;
  t.inet.send(d);
  Datagram d2;
  d2.src = t.hb;
  d2.dst = t.ha;
  t.inet.send(d2);
  t.sim.run();
  EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace son::net
