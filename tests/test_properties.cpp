// Parameterized property tests: protocol invariants swept across loss
// rates, path lengths, routing schemes and adversary sizes.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "fake_link.hpp"
#include "overlay/network.hpp"
#include <cmath>

#include "overlay/realtime.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;

// ---- Property: the Reliable Data Link delivers everything exactly once,
// for any loss rate below total and any chain length. -----------------------

struct ReliableSweep {
  double loss;
  std::size_t hops;
};

class ReliableProperty : public ::testing::TestWithParam<ReliableSweep> {};

TEST_P(ReliableProperty, ExactlyOnceDeliveryAndOrder) {
  const auto [loss, hops] = GetParam();
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = hops + 1;
  opts.hop_latency = 5_ms;
  auto fx = build_chain(sim, opts, sim::Rng{1000 + hops});
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(loss));
    fx.internet->link_dir(link, b).set_loss_model(net::make_bernoulli(loss));
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(static_cast<NodeId>(hops)).connect(2);
  std::vector<std::uint64_t> seqs;
  dst.set_handler([&](const Message& m, Duration) { seqs.push_back(m.hdr.flow_seq); });

  ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = LinkProtocol::kReliable;
  spec.ordered = true;
  client::CbrSender sender{sim, src,
                           {Destination::unicast(static_cast<NodeId>(hops), 2), spec, 400,
                            300, sim.now(), sim.now() + 5_s}};
  sim.run_for(30_s);

  ASSERT_EQ(seqs.size(), sender.sent());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    ASSERT_EQ(seqs[i], i + 1) << "order violated at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(LossAndHops, ReliableProperty,
                         ::testing::Values(ReliableSweep{0.01, 2}, ReliableSweep{0.05, 2},
                                           ReliableSweep{0.15, 3}, ReliableSweep{0.30, 2},
                                           ReliableSweep{0.05, 5}, ReliableSweep{0.10, 7}),
                         [](const auto& pinfo) {
                           return "loss" +
                                  std::to_string(static_cast<int>(pinfo.param.loss * 100)) +
                                  "_hops" + std::to_string(pinfo.param.hops);
                         });

// ---- Property: realtime protocols never deliver after their deadline by
// more than the reorder slack, and never duplicate. ---------------------------

struct RealtimeSweep {
  std::uint8_t n;
  std::uint8_t m;
};

class RealtimeProperty : public ::testing::TestWithParam<RealtimeSweep> {};

TEST_P(RealtimeProperty, NoDuplicatesAndDeadlinesRespected) {
  const auto [n_req, m_ret] = GetParam();
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 4;
  opts.hop_latency = 10_ms;
  auto fx = build_chain(sim, opts, sim::Rng{2000u + std::uint64_t{n_req} * 16 + m_ret});
  net::GilbertElliottLoss::Params ge;
  ge.mean_good_time = 500_ms;
  ge.mean_bad_time = 30_ms;
  ge.loss_bad = 0.8;
  std::uint64_t k = 0;
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(
        net::make_gilbert_elliott(ge, sim::Rng{3000 + k++}));
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(3).connect(2);
  std::set<std::uint64_t> seen;
  std::uint64_t dups = 0;
  double worst_ms = 0.0;
  dst.set_handler([&](const Message& m, Duration lat) {
    if (!seen.insert(m.hdr.flow_seq).second) ++dups;
    worst_ms = std::max(worst_ms, lat.to_millis_f());
  });

  ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = LinkProtocol::kRealtimeNM;
  spec.deadline = 150_ms;
  spec.nm_requests = n_req;
  spec.nm_retransmissions = m_ret;
  client::CbrSender sender{sim, src,
                           {Destination::unicast(3, 2), spec, 500, 300, sim.now(),
                            sim.now() + 10_s}};
  sim.run_for(15_s);

  EXPECT_EQ(dups, 0u);
  EXPECT_GT(sender.sent(), 4000u);
  // Recovery is abandoned once the budget is spent: nothing arrives
  // grotesquely late (one per-hop recovery round of slack allowed).
  EXPECT_LT(worst_ms, 150.0 + 50.0);
  // And the protocol actually recovers most of the bursts. A single
  // retransmission (M=1) cannot escape every 80%-loss burst; the multi-
  // strike configurations must do strictly better.
  const double min_delivery = (m_ret == 1) ? 0.90 : 0.97;
  EXPECT_GT(static_cast<double>(seen.size()) / static_cast<double>(sender.sent()),
            min_delivery);
}

INSTANTIATE_TEST_SUITE_P(NM, RealtimeProperty,
                         ::testing::Values(RealtimeSweep{1, 1}, RealtimeSweep{2, 2},
                                           RealtimeSweep{3, 3}, RealtimeSweep{3, 1},
                                           RealtimeSweep{1, 3}),
                         [](const auto& pinfo) {
                           return "N" + std::to_string(pinfo.param.n) + "M" +
                                  std::to_string(pinfo.param.m);
                         });

// ---- Property: with f <= k-1 compromised interior nodes, k disjoint paths
// deliver 100%, for every (k, f) and several adversary placements. -----------

struct DisjointSweep {
  std::uint8_t k;
  int f;
};

class DisjointGuarantee : public ::testing::TestWithParam<DisjointSweep> {};

TEST_P(DisjointGuarantee, ToleratesUpToKMinus1Compromises) {
  const auto [k, f] = GetParam();
  ASSERT_LT(f, k);
  for (std::uint64_t placement = 0; placement < 5; ++placement) {
    Simulator sim;
    GraphOptions gopts;
    auto fx = build_graph_fixture(sim, circulant_topology(10), gopts,
                                  sim::Rng{4000 + placement});
    fx.overlay->settle(3_s);

    sim::Rng pick{5000 + placement * 13 + static_cast<std::uint64_t>(f)};
    std::vector<NodeId> interior;
    for (NodeId n = 1; n < 5; ++n) interior.push_back(n);        // one side
    for (NodeId n = 6; n < 10; ++n) interior.push_back(n);       // other side
    pick.shuffle(interior);
    for (int i = 0; i < f; ++i) {
      fx.overlay->node(interior[static_cast<std::size_t>(i)])
          .set_compromise(CompromiseBehavior::blackhole());
    }

    auto& src = fx.overlay->node(0).connect(1);
    auto& dst = fx.overlay->node(5).connect(2);
    client::MeasuringSink sink{dst};
    ServiceSpec spec;
    spec.scheme = RouteScheme::kDisjointPaths;
    spec.num_paths = k;
    for (int i = 0; i < 20; ++i) {
      src.send(Destination::unicast(5, 2), make_payload(100), spec);
    }
    sim.run_for(2_s);
    EXPECT_EQ(sink.received(), 20u) << "k=" << int{k} << " f=" << f << " placement "
                                    << placement;
    EXPECT_EQ(sink.duplicates(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(KF, DisjointGuarantee,
                         ::testing::Values(DisjointSweep{2, 0}, DisjointSweep{2, 1},
                                           DisjointSweep{3, 1}, DisjointSweep{3, 2},
                                           DisjointSweep{4, 3}),
                         [](const auto& pinfo) {
                           return "k" + std::to_string(pinfo.param.k) + "_f" +
                                  std::to_string(pinfo.param.f);
                         });

// ---- Property: every routing scheme delivers exactly once to the client,
// whatever redundancy it uses internally. -------------------------------------

class ExactlyOnceProperty : public ::testing::TestWithParam<RouteScheme> {};

TEST_P(ExactlyOnceProperty, ClientSeesEachMessageOnce) {
  const RouteScheme scheme = GetParam();
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(10), gopts, sim::Rng{6000});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(5).connect(2);
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.scheme = scheme;
  spec.num_paths = 3;
  for (int i = 0; i < 100; ++i) {
    src.send(Destination::unicast(5, 2), make_payload(64), spec);
  }
  sim.run_for(2_s);
  EXPECT_EQ(sink.received(), 100u);
  EXPECT_EQ(sink.duplicates(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ExactlyOnceProperty,
                         ::testing::Values(RouteScheme::kLinkState,
                                           RouteScheme::kDisjointPaths,
                                           RouteScheme::kDissemination,
                                           RouteScheme::kFlooding),
                         [](const auto& pinfo) {
                           std::string name{to_string(pinfo.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- Property: IT-Priority fairness holds across attacker intensities. -------

class FairnessProperty : public ::testing::TestWithParam<double> {};

TEST_P(FairnessProperty, CorrectSourceKeepsGoodputUnderAnyFloodRate) {
  const double attack_rate = GetParam();
  Simulator sim;
  sim::Rng rng{7000};
  // 3 sources (node 0 correct @100/s, node 1 correct @100/s, node 2
  // attacker @attack_rate) -> relay 3 -> sink 4 over a paced IT link.
  topo::Graph g(5);
  g.add_edge(0, 3, 2);
  g.add_edge(1, 3, 2);
  g.add_edge(2, 3, 2);
  g.add_edge(3, 4, 5);
  GraphOptions gopts;
  gopts.node.link_protocols.it_egress_msgs_per_sec = 400;
  gopts.node.link_protocols.it_buffer_per_source = 32;
  auto fx = build_graph_fixture(sim, g, gopts, rng);
  fx.overlay->settle(2_s);

  auto& dst = fx.overlay->node(4).connect(50);
  std::map<NodeId, int> got;
  dst.set_handler([&](const Message& m, Duration) { ++got[m.hdr.origin]; });

  ServiceSpec spec;
  spec.link_protocol = LinkProtocol::kITPriority;
  std::vector<std::unique_ptr<client::CbrSender>> senders;
  for (NodeId s = 0; s < 2; ++s) {
    senders.push_back(std::make_unique<client::CbrSender>(
        sim, fx.overlay->node(s).connect(10),
        client::CbrSender::Options{Destination::unicast(4, 50), spec, 100, 300, sim.now(),
                                   sim.now() + 10_s}));
  }
  senders.push_back(std::make_unique<client::CbrSender>(
      sim, fx.overlay->node(2).connect(10),
      client::CbrSender::Options{Destination::unicast(4, 50), spec, attack_rate, 300,
                                 sim.now(), sim.now() + 10_s}));
  sim.run_for(12_s);

  // The egress carries 400/s; fair share for 3 active sources is ~133/s, so
  // the two correct 100/s sources must keep essentially all their traffic,
  // regardless of how hard the attacker floods.
  EXPECT_GT(got[0], 900);
  EXPECT_GT(got[1], 900);
}

INSTANTIATE_TEST_SUITE_P(FloodRates, FairnessProperty,
                         ::testing::Values(200.0, 1000.0, 5000.0, 20000.0),
                         [](const auto& pinfo) {
                           return "rate" + std::to_string(static_cast<int>(pinfo.param));
                         });


// ---- Property: FEC delivers its binomial residual across group sizes. ---------

class FecGroupSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FecGroupSweep, OverheadAndRecoveryScaleWithK) {
  const std::uint64_t k = GetParam();
  Simulator sim;
  test::FakeLinkPair pair{sim, 5_ms, 0.03, 8000 + k};
  LinkProtocolConfig cfg;
  cfg.fec_group_size = k;
  auto a = make_link_endpoint(LinkProtocol::kFec, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kFec, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());
  const int n = 6000;
  for (int i = 1; i <= n; ++i) {
    sim.schedule(Duration::milliseconds(i), [&, i]() {
      a->send(test::make_msg(static_cast<std::uint64_t>(i), sim.now()));
    });
  }
  sim.run_for(Duration::seconds(10));
  const double delivered =
      static_cast<double>(pair.ctx_b().delivered.size()) / static_cast<double>(n);
  // Residual loss ~= p * (1 - (1-p)^k): grows with k but stays << p.
  const double p = 0.03;
  const double residual_bound = p * (1.0 - std::pow(1.0 - p, static_cast<double>(k))) * 2.5;
  EXPECT_GT(delivered, 1.0 - residual_bound - 0.004) << "k=" << k;
  // Wire overhead is exactly one parity frame per k data frames.
  const double frames_per_msg = static_cast<double>(pair.frames_sent()) / n;
  EXPECT_NEAR(frames_per_msg, 1.0 + 1.0 / static_cast<double>(k), 0.02);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, FecGroupSweep, ::testing::Values(2u, 4u, 8u, 16u),
                         [](const auto& pinfo) {
                           return "k" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace son::overlay
