// The incremental link-state routing engine's correctness contract:
//
//  * topo::SptEngine repaired through TopologyDb's dirty-edge journal is
//    bit-identical (dist, parent, parent_edge) to a fresh topo::dijkstra on
//    the same weights, under randomized LSA churn across multiple seeds;
//  * an incrementally-refreshed Router answers exactly like a cold one;
//  * TopologyDb::apply rejects stale/duplicate sequence numbers, indexes
//    reports per LinkBit, and journals exactly the edges whose cost moved;
//  * Router evicts stale-version tree/mask cache entries instead of growing
//    without bound;
//  * anycast and multicast tie-breaking is deterministic (the son-lint
//    determinism contract at the routing level).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "overlay/group_state.hpp"
#include "overlay/link_state.hpp"
#include "overlay/network.hpp"
#include "overlay/routing.hpp"
#include "sim/random.hpp"
#include "topo/graph.hpp"

namespace son::overlay {
namespace {

// Same 4-node square as test_overlay_components: edges
// 0:(0-1,w1) 1:(1-3,w1) 2:(0-2,w3) 3:(2-3,w3).
topo::Graph square() {
  topo::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(2, 3, 3.0);
  return g;
}

// ---- randomized-churn cross-check ------------------------------------------

/// One randomized LSA from `origin`: every adjacent link reported with
/// jittered latency, loss, and an occasional down flap.
LinkStateAd random_ad(const topo::Graph& g, NodeId origin, std::uint64_t seq, sim::Rng& rng) {
  LinkStateAd ad;
  ad.origin = origin;
  ad.seq = seq;
  for (const auto& nbr_edge : g.neighbors(origin)) {
    LinkReport r;
    r.link = static_cast<LinkBit>(nbr_edge.second);
    r.up = !rng.bernoulli(0.12);
    r.latency_ms = 5.0 + 10.0 * rng.uniform();
    r.loss_rate = rng.bernoulli(0.3) ? 0.4 * rng.uniform() : 0.0;
    ad.links.push_back(r);
  }
  return ad;
}

/// 1000 steps of LSA churn; after every accepted ad the incrementally
/// repaired tree must match a fresh full Dijkstra bit-for-bit, and the
/// long-lived Router must answer exactly like a cold one.
void churn_cross_check(std::uint64_t seed) {
  const topo::Graph base = circulant_topology(16);
  TopologyDb db{base};
  GroupDb groups{base.num_nodes()};
  const NodeId self = 0;

  Router incremental{self, db, groups};
  topo::SptEngine engine;
  std::uint64_t engine_version = 0;
  topo::EdgeSet delta;

  sim::Rng rng{seed};
  std::vector<std::uint64_t> seq(base.num_nodes(), 0);

  for (int step = 0; step < 1000; ++step) {
    const auto origin = static_cast<NodeId>(rng.index(base.num_nodes()));
    LinkStateAd ad = random_ad(base, origin, ++seq[origin], rng);
    ASSERT_TRUE(db.apply(ad));
    // Every few steps, a duplicate-content refresh (new seq, same payload):
    // the version bumps but the journal records an empty delta, which the
    // engine must absorb without work.
    if (step % 7 == 3) {
      ad.seq = ++seq[origin];
      ASSERT_TRUE(db.apply(ad));
    }

    // Drive the engine the way Router::refresh_spt does.
    const bool ok = db.changed_edges_since(engine_version, delta);
    const topo::Graph& g = db.current_graph();
    if (!engine.built() || !ok || 2 * delta.size() >= g.num_edges()) {
      engine.full_compute(g, self);
    } else if (!delta.empty()) {
      engine.update(g, delta);
    }
    engine_version = db.version();

    const topo::ShortestPaths fresh = topo::dijkstra(g, self);
    for (topo::NodeIndex v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(engine.dist()[v], fresh.dist[v]) << "seed " << seed << " step " << step
                                                 << " node " << v;
      ASSERT_EQ(engine.parent()[v], fresh.parent[v]) << "seed " << seed << " step " << step
                                                     << " node " << v;
      ASSERT_EQ(engine.parent_edge()[v], fresh.parent_edge[v])
          << "seed " << seed << " step " << step << " node " << v;
    }

    // Router-level equivalence: the long-lived incremental router vs a cold
    // one (which full-computes on first use).
    if (step % 10 == 0) {
      Router cold{self, db, groups};
      for (topo::NodeIndex v = 0; v < g.num_nodes(); ++v) {
        const auto dst = static_cast<NodeId>(v);
        ASSERT_EQ(incremental.next_hop(dst), cold.next_hop(dst))
            << "seed " << seed << " step " << step << " dst " << v;
        ASSERT_EQ(incremental.path_cost_to(dst), cold.path_cost_to(dst))
            << "seed " << seed << " step " << step << " dst " << v;
      }
    } else {
      // Still exercise the lazy next-hop memo on a random destination.
      const auto dst = static_cast<NodeId>(rng.index(base.num_nodes()));
      (void)incremental.next_hop(dst);
    }
  }
}

TEST(IncrementalSpt, MatchesFullDijkstraUnderChurnSeed1) { churn_cross_check(1); }
TEST(IncrementalSpt, MatchesFullDijkstraUnderChurnSeed2) { churn_cross_check(2); }
TEST(IncrementalSpt, MatchesFullDijkstraUnderChurnSeed3) { churn_cross_check(3); }

TEST(IncrementalSpt, QuantizedWeightsKeepCanonicalTieBreaks) {
  // Latencies drawn from a tiny integer set make equal-cost paths the norm
  // rather than the exception, so this churn exercises the canonical
  // (dist, node, edge) tie-breaking that continuous random weights never
  // touch: a changed edge that becomes an exactly-equal-cost alternative
  // must switch the parent exactly when a fresh Dijkstra would.
  const topo::Graph base = circulant_topology(16);
  TopologyDb db{base};
  topo::SptEngine engine;
  topo::EdgeSet delta;
  std::uint64_t version = 0;
  std::vector<std::uint64_t> seq(base.num_nodes(), 0);

  for (std::uint64_t s = 1; s <= 3; ++s) {
    sim::Rng rng{0xbeef0000 + s};
    for (int step = 0; step < 1000; ++step) {
      const auto origin = static_cast<NodeId>(rng.index(base.num_nodes()));
      LinkStateAd ad;
      ad.origin = origin;
      ad.seq = ++seq[origin];
      for (const auto& nbr_edge : base.neighbors(origin)) {
        LinkReport r;
        r.link = static_cast<LinkBit>(nbr_edge.second);
        r.up = !rng.bernoulli(0.05);
        r.latency_ms = 5.0 * (1.0 + static_cast<double>(rng.index(4)));  // 5/10/15/20
        ad.links.push_back(r);
      }
      ASSERT_TRUE(db.apply(ad));

      const bool ok = db.changed_edges_since(version, delta);
      const topo::Graph& g = db.current_graph();
      if (!engine.built() || !ok || 2 * delta.size() >= g.num_edges()) {
        engine.full_compute(g, 0);
      } else if (!delta.empty()) {
        engine.update(g, delta);
      }
      version = db.version();

      const auto fresh = topo::dijkstra(g, 0);
      ASSERT_EQ(engine.dist(), fresh.dist) << "seed " << s << " step " << step;
      ASSERT_EQ(engine.parent(), fresh.parent) << "seed " << s << " step " << step;
      ASSERT_EQ(engine.parent_edge(), fresh.parent_edge) << "seed " << s << " step " << step;
    }
  }
}

TEST(IncrementalSpt, MassChangeAndRecoveryStayExact) {
  // Flip large fractions of the topology at once (loss-aware toggles journal
  // every edge; Router's mass-change fallback path) and verify exactness.
  const topo::Graph base = circulant_topology(12);
  TopologyDb db{base};
  topo::SptEngine engine;
  topo::EdgeSet delta;
  std::uint64_t version = 0;
  sim::Rng rng{99};
  std::uint64_t seq = 0;

  for (int round = 0; round < 50; ++round) {
    if (round % 5 == 4) {
      db.set_loss_aware(round % 10 != 9);
    } else {
      const auto origin = static_cast<NodeId>(rng.index(base.num_nodes()));
      ASSERT_TRUE(db.apply(random_ad(base, origin, ++seq, rng)));
    }
    const bool ok = db.changed_edges_since(version, delta);
    const topo::Graph& g = db.current_graph();
    if (!engine.built() || !ok || 2 * delta.size() >= g.num_edges()) {
      engine.full_compute(g, 0);
    } else if (!delta.empty()) {
      engine.update(g, delta);
    }
    version = db.version();
    const auto fresh = topo::dijkstra(g, 0);
    ASSERT_EQ(engine.dist(), fresh.dist) << "round " << round;
    ASSERT_EQ(engine.parent(), fresh.parent) << "round " << round;
    ASSERT_EQ(engine.parent_edge(), fresh.parent_edge) << "round " << round;
  }
}

// ---- TopologyDb: apply semantics and the change journal --------------------

TEST(TopologyDbApply, RejectsStaleAndDuplicateSeq) {
  TopologyDb db{square()};
  const std::uint64_t v0 = db.version();
  EXPECT_TRUE(db.apply({0, 5, {{0, true, 2.0, 0.0}}}));
  const std::uint64_t v1 = db.version();
  EXPECT_GT(v1, v0);
  // Duplicate seq: rejected, no version bump.
  EXPECT_FALSE(db.apply({0, 5, {{0, true, 9.0, 0.0}}}));
  EXPECT_EQ(db.version(), v1);
  EXPECT_NEAR(db.link_cost(0), 2.0, 1e-9);  // old report kept
  // Stale seq: rejected.
  EXPECT_FALSE(db.apply({0, 4, {{0, false, 2.0, 0.0}}}));
  EXPECT_EQ(db.version(), v1);
  EXPECT_TRUE(db.link_up(0));
  // Unknown origin: rejected.
  EXPECT_FALSE(db.apply({99, 1, {}}));
  EXPECT_EQ(db.stored_seq(0), 5u);
  EXPECT_EQ(db.stored_seq(1), 0u);
}

TEST(TopologyDbApply, IndexedReportLookupMatchesAdContents) {
  TopologyDb db{square()};
  // Node 0 is adjacent to edges 0 and 2; report them out of order, plus a
  // bogus out-of-range bit that must be ignored.
  EXPECT_TRUE(db.apply({0, 1, {{2, true, 7.0, 0.0}, {0, false, 1.0, 0.0}, {200, true, 1.0, 0.0}}}));
  EXPECT_FALSE(db.link_up(0));
  EXPECT_TRUE(db.link_up(2));
  EXPECT_NEAR(db.link_cost(2), 7.0, 1e-9);
  // Duplicate report for one link inside an ad: the first occurrence wins
  // (the behavior of the pre-index linear scan).
  EXPECT_TRUE(db.apply({0, 2, {{0, true, 4.0, 0.0}, {0, true, 8.0, 0.0}}}));
  EXPECT_NEAR(db.link_cost(0), 4.0, 1e-9);
}

TEST(TopologyDbJournal, RecordsExactlyTheChangedEdges) {
  TopologyDb db{square()};
  topo::EdgeSet delta;
  const std::uint64_t v0 = db.version();

  EXPECT_TRUE(db.apply({0, 1, {{0, true, 2.0, 0.0}, {2, true, 3.5, 0.0}}}));
  ASSERT_TRUE(db.changed_edges_since(v0, delta));
  EXPECT_EQ(delta, (topo::EdgeSet{0, 2}));

  // Same content, new seq: version bumps, delta is empty.
  const std::uint64_t v1 = db.version();
  EXPECT_TRUE(db.apply({0, 2, {{0, true, 2.0, 0.0}, {2, true, 3.5, 0.0}}}));
  EXPECT_GT(db.version(), v1);
  ASSERT_TRUE(db.changed_edges_since(v1, delta));
  EXPECT_TRUE(delta.empty());

  // Only one report moved: only that edge is dirty.
  const std::uint64_t v2 = db.version();
  EXPECT_TRUE(db.apply({0, 3, {{0, true, 2.0, 0.0}, {2, false, 3.5, 0.0}}}));
  ASSERT_TRUE(db.changed_edges_since(v2, delta));
  EXPECT_EQ(delta, (topo::EdgeSet{2}));

  // A link dropped from the ad reverts to unreported: dirty again.
  const std::uint64_t v3 = db.version();
  EXPECT_TRUE(db.apply({0, 4, {{0, true, 2.0, 0.0}}}));
  ASSERT_TRUE(db.changed_edges_since(v3, delta));
  EXPECT_EQ(delta, (topo::EdgeSet{2}));
  EXPECT_TRUE(db.link_up(2));

  // Deltas accumulate (deduplicated) across a version span.
  ASSERT_TRUE(db.changed_edges_since(v0, delta));
  EXPECT_EQ(delta, (topo::EdgeSet{0, 2}));
}

TEST(TopologyDbJournal, BoundedWindowForcesFullRecompute) {
  TopologyDb db{square()};
  topo::EdgeSet delta;
  // Version 0 predates the journal (the db is born at version 1).
  EXPECT_FALSE(db.changed_edges_since(0, delta));
  // Age the window out: more accepted ads than the journal retains.
  std::uint64_t seq = 0;
  const std::uint64_t v_start = db.version();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.apply({0, ++seq, {{0, true, 2.0 + (i % 5), 0.0}}}));
  }
  EXPECT_FALSE(db.changed_edges_since(v_start, delta));
  // Recent spans still resolve.
  const std::uint64_t v_recent = db.version();
  ASSERT_TRUE(db.apply({0, ++seq, {{0, true, 1.0, 0.0}}}));
  ASSERT_TRUE(db.changed_edges_since(v_recent, delta));
  EXPECT_EQ(delta, (topo::EdgeSet{0}));
}

TEST(TopologyDbJournal, LossAwareToggleIsAMassChange) {
  TopologyDb db{square()};
  topo::EdgeSet delta;
  const std::uint64_t v = db.version();
  db.set_loss_aware(false);
  ASSERT_TRUE(db.changed_edges_since(v, delta));
  EXPECT_EQ(delta.size(), db.base_graph().num_edges());
}

// ---- Router cache eviction --------------------------------------------------

TEST(RouterCaches, TreeCacheEvictsStaleVersions) {
  TopologyDb db{square()};
  GroupDb groups{4};
  Router router{0, db, groups};
  groups.apply({3, 1, {8}});
  groups.apply({2, 1, {9}});

  (void)router.multicast_links(0, 8, kInvalidLinkBit);
  (void)router.multicast_links(0, 9, kInvalidLinkBit);
  (void)router.multicast_links(1, 8, kInvalidLinkBit);
  EXPECT_EQ(router.tree_cache_size(), 3u);

  // Topology version bump: the next call sweeps all stale entries and
  // rebuilds only the requested one.
  ASSERT_TRUE(db.apply({0, 1, {{0, true, 1.5, 0.0}}}));
  (void)router.multicast_links(0, 8, kInvalidLinkBit);
  EXPECT_EQ(router.tree_cache_size(), 1u);

  // Group version bump sweeps as well.
  (void)router.multicast_links(0, 9, kInvalidLinkBit);
  EXPECT_EQ(router.tree_cache_size(), 2u);
  groups.apply({1, 1, {8}});
  (void)router.multicast_links(0, 8, kInvalidLinkBit);
  EXPECT_EQ(router.tree_cache_size(), 1u);
}

TEST(RouterCaches, MaskCacheEvictsStaleVersions) {
  TopologyDb db{square()};
  GroupDb groups{4};
  Router router{0, db, groups};
  ServiceSpec spec;
  spec.scheme = RouteScheme::kDisjointPaths;
  spec.num_paths = 2;
  (void)router.source_mask(spec, 1);
  (void)router.source_mask(spec, 2);
  (void)router.source_mask(spec, 3);
  EXPECT_EQ(router.mask_cache_size(), 3u);

  ASSERT_TRUE(db.apply({0, 1, {{0, true, 1.5, 0.0}}}));
  (void)router.source_mask(spec, 3);
  EXPECT_EQ(router.mask_cache_size(), 1u);
}

TEST(RouterCaches, BoundedUnderLongChurn) {
  // The regression this PR fixes: unbounded cache growth across a long churn
  // run. Every version bump invalidates, so the steady-state size is the
  // number of keys queried per version, not the run length.
  const topo::Graph base = circulant_topology(8);
  TopologyDb db{base};
  GroupDb groups{base.num_nodes()};
  Router router{0, db, groups};
  groups.apply({3, 1, {8}});
  ServiceSpec spec;
  spec.scheme = RouteScheme::kDisjointPaths;
  spec.num_paths = 2;
  std::uint64_t seq = 0;
  sim::Rng rng{7};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db.apply(random_ad(base, static_cast<NodeId>(rng.index(8)), ++seq, rng)));
    (void)router.multicast_links(0, 8, kInvalidLinkBit);
    (void)router.source_mask(spec, static_cast<NodeId>(4));
    EXPECT_LE(router.tree_cache_size(), 1u);
    EXPECT_LE(router.mask_cache_size(), 1u);
  }
}

// ---- deterministic tie-breaking ---------------------------------------------

TEST(RoutingDeterminism, AnycastTiesGoToLowestNodeId) {
  // Ring of 4 with equal weights: from node 0, nodes 1 and 3 are both one
  // 10ms hop away. The lowest id must win, regardless of join order.
  topo::Graph ring(4);
  ring.add_edge(0, 1, 10.0);
  ring.add_edge(1, 2, 10.0);
  ring.add_edge(2, 3, 10.0);
  ring.add_edge(3, 0, 10.0);
  {
    TopologyDb db{ring};
    GroupDb groups{4};
    Router router{0, db, groups};
    groups.apply({3, 1, {5}});
    groups.apply({1, 1, {5}});
    EXPECT_EQ(router.anycast_target(5), 1);
  }
  {
    TopologyDb db{ring};
    GroupDb groups{4};
    Router router{0, db, groups};
    groups.apply({1, 1, {5}});  // reversed join order
    groups.apply({3, 1, {5}});
    EXPECT_EQ(router.anycast_target(5), 1);
  }
}

TEST(RoutingDeterminism, MulticastLinksAscendingAndOrderIndependent) {
  const topo::Graph base = circulant_topology(8);
  const std::vector<NodeId> members{2, 5, 7};
  const auto run = [&](bool reversed) {
    TopologyDb db{base};
    GroupDb groups{base.num_nodes()};
    Router router{0, db, groups};
    auto order = members;
    if (reversed) std::reverse(order.begin(), order.end());
    for (const NodeId m : order) groups.apply({m, 1, {6}});
    return std::vector<LinkBit>{router.multicast_links(0, 6, kInvalidLinkBit)};
  };
  const auto a = run(false);
  const auto b = run(true);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace son::overlay
