#include "topo/graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hpp"

namespace son::topo {
namespace {

/// 6-node test graph:
///   0-1-2-5 (weights 1 each), 0-3-4-5 (weights 2 each), 1-4 (weight 1).
Graph diamond() {
  Graph g(6);
  g.add_edge(0, 1, 1);  // e0
  g.add_edge(1, 2, 1);  // e1
  g.add_edge(2, 5, 1);  // e2
  g.add_edge(0, 3, 2);  // e3
  g.add_edge(3, 4, 2);  // e4
  g.add_edge(4, 5, 2);  // e5
  g.add_edge(1, 4, 1);  // e6
  return g;
}

TEST(Graph, Accessors) {
  const Graph g = diamond();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.find_edge(0, 1), 0u);
  EXPECT_EQ(g.find_edge(1, 0), 0u);
  EXPECT_EQ(g.find_edge(0, 5), kNoEdge);
  EXPECT_EQ(g.other_end(0, 0), 1u);
  EXPECT_EQ(g.other_end(0, 1), 0u);
}

TEST(Dijkstra, FindsShortestPath) {
  const Graph g = diamond();
  const auto p = shortest_path(g, 0, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 1, 2, 5}));
  EXPECT_DOUBLE_EQ(path_cost(g, *p), 3.0);
}

TEST(Dijkstra, RespectsDisabledNodes) {
  const Graph g = diamond();
  std::vector<bool> disabled(6, false);
  disabled[2] = true;
  const auto p = shortest_path(g, 0, 5, disabled);
  ASSERT_TRUE(p.has_value());
  // Without node 2: 0-1-4-5 costs 1+1+2 = 4.
  EXPECT_EQ(*p, (Path{0, 1, 4, 5}));
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(Dijkstra, SelfPath) {
  const Graph g = diamond();
  const auto p = shortest_path(g, 3, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Path{3});
}

TEST(Dijkstra, InfinityWeightActsAsAbsent) {
  Graph g(3);
  g.add_edge(0, 1, std::numeric_limits<double>::infinity());
  g.add_edge(0, 2, 1);
  g.add_edge(2, 1, 1);
  const auto p = shortest_path(g, 0, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 2, 1}));
}

void expect_node_disjoint(const std::vector<Path>& paths, NodeIndex src, NodeIndex dst) {
  std::set<NodeIndex> interior;
  for (const auto& p : paths) {
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), src);
    EXPECT_EQ(p.back(), dst);
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(interior.insert(p[i]).second)
          << "node " << p[i] << " shared between paths";
    }
  }
}

TEST(DisjointPaths, TwoDisjointInDiamond) {
  const Graph g = diamond();
  const auto paths = k_node_disjoint_paths(g, 0, 5, 2);
  ASSERT_EQ(paths.size(), 2u);
  expect_node_disjoint(paths, 0, 5);
  // Total cost should be minimal: 3 (0-1-2-5) + 6 (0-3-4-5) = 9.
  EXPECT_DOUBLE_EQ(path_cost(g, paths[0]) + path_cost(g, paths[1]), 9.0);
}

TEST(DisjointPaths, RequestingMoreThanConnectivityReturnsFewer) {
  const Graph g = diamond();
  const auto paths = k_node_disjoint_paths(g, 0, 5, 4);
  EXPECT_EQ(paths.size(), 2u);  // node 0 has degree 2
}

TEST(DisjointPaths, SinglePathGraphYieldsOne) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const auto paths = k_node_disjoint_paths(g, 0, 2, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (Path{0, 1, 2}));
}

TEST(DisjointPaths, DisconnectedYieldsZero) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_TRUE(k_node_disjoint_paths(g, 0, 3, 2).empty());
}

TEST(DisjointPaths, SuurballeTrap) {
  // Greedy shortest-first fails here; min-cost flow must find both paths.
  //      0 --1-- 1 --1-- 3
  //      0 --2-- 2 --2-- 3
  //      1 --0.1-- 2
  // Greedy takes 0-1-2-3 (via the cheap middle edge), blocking both.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 3, 10);
  g.add_edge(0, 2, 2);
  g.add_edge(2, 3, 2);
  g.add_edge(1, 2, 0.1);
  const auto paths = k_node_disjoint_paths(g, 0, 3, 2);
  ASSERT_EQ(paths.size(), 2u);
  expect_node_disjoint(paths, 0, 3);
}

// Property test: on random graphs, returned paths are valid, node-disjoint,
// and their count matches a brute-force connectivity bound.
TEST(DisjointPaths, PropertyRandomGraphs) {
  sim::Rng rng{2024};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 5 + rng.index(8);
    Graph g(n);
    std::set<std::pair<NodeIndex, NodeIndex>> used;
    const std::size_t extra = n + rng.index(2 * n);
    for (std::size_t i = 0; i < extra; ++i) {
      const auto u = static_cast<NodeIndex>(rng.index(n));
      const auto v = static_cast<NodeIndex>(rng.index(n));
      if (u == v) continue;
      const auto key = std::minmax(u, v);
      if (!used.insert({key.first, key.second}).second) continue;
      g.add_edge(u, v, 1.0 + rng.uniform() * 9.0);
    }
    const NodeIndex src = 0;
    const NodeIndex dst = static_cast<NodeIndex>(n - 1);
    const auto paths = k_node_disjoint_paths(g, src, dst, 3);
    expect_node_disjoint(paths, src, dst);
    // Each path must actually exist in g.
    for (const auto& p : paths) {
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        EXPECT_NE(g.find_edge(p[i], p[i + 1]), kNoEdge);
      }
    }
    // Removing the interiors of k-1 paths must leave the remaining one
    // intact (that is the point of disjointness).
    if (paths.size() >= 2) {
      std::vector<bool> disabled(n, false);
      for (std::size_t pi = 1; pi < paths.size(); ++pi) {
        for (std::size_t i = 1; i + 1 < paths[pi].size(); ++i) {
          disabled[paths[pi][i]] = true;
        }
      }
      EXPECT_TRUE(shortest_path(g, src, dst, disabled).has_value());
    }
  }
}

TEST(MulticastTree, SpansTerminalsOnly) {
  const Graph g = diamond();
  const auto edges = multicast_tree(g, 0, {2, 4});
  // SPT from 0: 2 via 0-1-2, 4 via 0-1-4. Tree = {e0, e1, e6}.
  EXPECT_EQ(edges, (EdgeSet{0, 1, 6}));
}

TEST(MulticastTree, SharedPrefixCountedOnce) {
  const Graph g = diamond();
  const auto edges = multicast_tree(g, 0, {2, 5});
  // 5 via 0-1-2-5 shares prefix with 2.
  EXPECT_EQ(edges, (EdgeSet{0, 1, 2}));
}

TEST(MulticastTree, UnreachableTerminalSkipped) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  const auto edges = multicast_tree(g, 0, {1, 3});
  EXPECT_EQ(edges, EdgeSet{0});
}

TEST(MulticastTree, EmptyTerminals) {
  const Graph g = diamond();
  EXPECT_TRUE(multicast_tree(g, 0, {}).empty());
}

TEST(EdgeHelpers, PathEdgesAndUnion) {
  const Graph g = diamond();
  const auto e1 = path_edges(g, Path{0, 1, 2, 5});
  EXPECT_EQ(e1, (EdgeSet{0, 1, 2}));
  const auto u = union_edges(e1, EdgeSet{2, 6});
  EXPECT_EQ(u, (EdgeSet{0, 1, 2, 6}));
}

TEST(Reachability, SubgraphRespected) {
  const Graph g = diamond();
  const EdgeSet chain{0, 1, 2};  // 0-1-2-5
  std::vector<bool> none(6, false);
  EXPECT_TRUE(reachable_in_subgraph(g, chain, 0, 5, none));
  std::vector<bool> no2(6, false);
  no2[2] = true;
  EXPECT_FALSE(reachable_in_subgraph(g, chain, 0, 5, no2));
  // Full graph survives node 2 down.
  EdgeSet all;
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) all.push_back(e);
  EXPECT_TRUE(reachable_in_subgraph(g, all, 0, 5, no2));
}

}  // namespace
}  // namespace son::topo
