// Robustness: tracer coverage, congestion behaviour, failure-injection
// fuzzing, and determinism of whole-overlay runs.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "sim/trace.hpp"

namespace son {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

// ---- Tracer ---------------------------------------------------------------------

TEST(Tracer, OffByDefaultAndFilterByLevel) {
  sim::Tracer t;  // default: off
  EXPECT_FALSE(t.enabled(sim::TraceLevel::kError));

  std::vector<sim::Tracer::Record> records;
  sim::Tracer capture{sim::TraceLevel::kWarn,
                      [&](const sim::Tracer::Record& r) { records.push_back(r); }};
  EXPECT_FALSE(capture.enabled(sim::TraceLevel::kInfo));
  EXPECT_TRUE(capture.enabled(sim::TraceLevel::kWarn));
  capture.emit(TimePoint::zero() + 1_ms, sim::TraceLevel::kInfo, "x", "suppressed");
  capture.emit(TimePoint::zero() + 2_ms, sim::TraceLevel::kError, "y", "kept");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].message, "kept");
  EXPECT_EQ(records[0].component, "y");
  EXPECT_EQ(records[0].time, TimePoint::zero() + 2_ms);
}

TEST(Tracer, LevelNames) {
  EXPECT_EQ(to_string(sim::TraceLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(sim::TraceLevel::kError), "ERROR");
}

TEST(Tracer, NodeEmitsFailoverTrace) {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{1}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{2}};
  std::vector<std::string> messages;
  net.node(0).set_tracer(sim::Tracer{sim::TraceLevel::kInfo,
                                     [&](const sim::Tracer::Record& r) {
                                       messages.push_back(r.message);
                                     }});
  net.settle(3_s);
  inet.set_link_up(u.links_a[0], false);  // force channel failover on link 0
  sim.run_for(2_s);
  const bool saw_failover =
      std::any_of(messages.begin(), messages.end(), [](const std::string& m) {
        return m.find("failover") != std::string::npos;
      });
  EXPECT_TRUE(saw_failover);
}

// ---- Congestion -----------------------------------------------------------------

TEST(Congestion, OfferedLoadAboveCapacitySheds) {
  // A 4 Mbps bottleneck carrying ~8 Mbps of best-effort video: about half
  // gets through, the rest tail-drops; the survivors see queueing delay up
  // to the 100 ms queue bound.
  Simulator sim;
  overlay::ChainOptions opts;
  opts.n_nodes = 2;
  opts.hop_latency = 10_ms;
  opts.bandwidth_bps = 4e6;
  auto fx = overlay::build_chain(sim, opts, sim::Rng{3});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(1).connect(2);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;  // best effort
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(1, 2), spec, 800, 1250,
                            sim.now(), sim.now() + 10_s}};
  sim.run_for(12_s);
  const double ratio = sink.delivery_ratio(sender.sent());
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.65);
  // Queueing delay shows up in the latency tail, bounded by max_queue_delay
  // (plus propagation and per-packet serialization on each 4 Mbps link).
  EXPECT_GT(sink.latencies_ms().quantile(0.99), 80.0);
  EXPECT_LT(sink.latencies_ms().max(), 10.0 + 100.0 + 20.0);
}

TEST(Congestion, TwoFlowsShareBottleneckRoughlyEqually) {
  Simulator sim;
  overlay::ChainOptions opts;
  opts.n_nodes = 2;
  opts.hop_latency = 5_ms;
  opts.bandwidth_bps = 4e6;
  auto fx = overlay::build_chain(sim, opts, sim::Rng{4});
  fx.overlay->settle(3_s);

  auto& c1 = fx.overlay->node(0).connect(1);
  auto& c2 = fx.overlay->node(0).connect(2);
  auto& d1 = fx.overlay->node(1).connect(11);
  auto& d2 = fx.overlay->node(1).connect(12);
  client::MeasuringSink s1{d1}, s2{d2};
  overlay::ServiceSpec spec;
  // Poisson arrivals: synchronized CBR flows phase-lock at a saturated
  // tail-drop bottleneck; random arrivals expose the statistical sharing.
  client::PoissonSender f1{sim,
                           c1,
                           {overlay::Destination::unicast(1, 11), spec, 400, 1250,
                            sim.now(), sim.now() + 10_s},
                           sim::Rng{91}};
  client::PoissonSender f2{sim,
                           c2,
                           {overlay::Destination::unicast(1, 12), spec, 400, 1250,
                            sim.now(), sim.now() + 10_s},
                           sim::Rng{92}};
  sim.run_for(12_s);
  const double r1 = s1.delivery_ratio(f1.sent());
  const double r2 = s2.delivery_ratio(f2.sent());
  EXPECT_NEAR(r1, r2, 0.10);  // equal offered load -> similar shares
}

// ---- Failure-injection fuzz ---------------------------------------------------------

TEST(Chaos, RandomFailuresNeverWedgeTheOverlay) {
  // 60 s of random fiber cuts/repairs and node crash/recoveries on the US
  // map while a reliable flow runs. Invariants: the run completes, no
  // duplicates reach the client, and once everything heals the flow is
  // fully functional again.
  Simulator sim;
  net::Internet inet{sim, sim::Rng{5}};
  const auto map = topo::continental_us();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{6}};
  net.settle(3_s);

  auto& src = net.node(0).connect(1);
  auto& dst = net.node(9).connect(2);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;
  spec.link_protocol = overlay::LinkProtocol::kReliable;
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(9, 2), spec, 200, 400,
                            sim.now(), sim.now() + 60_s}};

  sim::Rng chaos{7};
  for (int ev = 0; ev < 40; ++ev) {
    const auto at = Duration::from_millis_f(chaos.uniform() * 50'000.0);
    const std::size_t edge = chaos.index(map.edges.size());
    const bool isp_a = chaos.bernoulli(0.5);
    const net::LinkId link = isp_a ? u.links_a[edge] : u.links_b[edge];
    const auto repair = at + Duration::from_millis_f(500 + chaos.uniform() * 4000);
    sim.schedule_at(TimePoint::zero() + 3_s + at,
                    [&inet, link]() { inet.set_link_up(link, false); });
    sim.schedule_at(TimePoint::zero() + 3_s + repair,
                    [&inet, link]() { inet.set_link_up(link, true); });
  }
  // Node crashes (never the endpoints).
  for (int ev = 0; ev < 6; ++ev) {
    const auto at = Duration::from_millis_f(chaos.uniform() * 45'000.0);
    const auto node = static_cast<overlay::NodeId>(1 + chaos.index(8));
    const auto back = at + Duration::from_millis_f(1000 + chaos.uniform() * 5000);
    if (node == 9) continue;
    sim.schedule_at(TimePoint::zero() + 3_s + at,
                    [&net, node]() { net.node(node).set_crashed(true); });
    sim.schedule_at(TimePoint::zero() + 3_s + back,
                    [&net, node]() { net.node(node).set_crashed(false); });
  }
  sim.run_for(70_s);

  EXPECT_EQ(sink.duplicates(), 0u);
  EXPECT_GT(sink.delivery_ratio(sender.sent()), 0.85);

  // After the storm: the overlay is healthy again end-to-end.
  auto& probe_dst = net.node(9).connect(3);
  client::MeasuringSink probe_sink{probe_dst};
  for (int i = 0; i < 10; ++i) {
    src.send(overlay::Destination::unicast(9, 3), overlay::make_payload(100), spec);
  }
  sim.run_for(2_s);
  EXPECT_EQ(probe_sink.received(), 10u);
}

// ---- Determinism -----------------------------------------------------------------------

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  const auto run = []() {
    Simulator sim;
    net::Internet inet{sim, sim::Rng{42}};
    const auto map = topo::continental_us();
    const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
    overlay::NodeConfig cfg;
    overlay::OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{43}};
    net.settle(3_s);
    auto& src = net.node(0).connect(1);
    auto& dst = net.node(9).connect(2);
    std::vector<std::int64_t> arrival_ns;
    dst.set_handler([&](const overlay::Message&, Duration) {
      arrival_ns.push_back(sim.now().ns());
    });
    // Loss makes the runs interesting (retransmissions, timers).
    const auto [a, b] = inet.link_endpoints(u.links_a[1]);
    inet.link_dir(u.links_a[1], a).set_loss_model(net::make_bernoulli(0.05));
    overlay::ServiceSpec spec;
    spec.link_protocol = overlay::LinkProtocol::kReliable;
    client::CbrSender sender{sim, src,
                             {overlay::Destination::unicast(9, 2), spec, 500, 700,
                              sim.now(), sim.now() + 5_s}};
    sim.run_for(8_s);
    return arrival_ns;
  };
  const auto r1 = run();
  const auto r2 = run();
  ASSERT_FALSE(r1.empty());
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace son
