// Tests for the session's per-flow statistics (§II-C flow-based processing).
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "overlay/network.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;

struct FlowFixture {
  Simulator sim;
  GraphFixture fx;

  FlowFixture() {
    GraphOptions gopts;
    fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{60});
    fx.overlay->settle(3_s);
  }
};

TEST(FlowStats, TracksIdentityCountsAndLatency) {
  FlowFixture f;
  auto& src = f.fx.overlay->node(0).connect(7);
  auto& dst = f.fx.overlay->node(3).connect(8);
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.link_protocol = LinkProtocol::kReliable;
  for (int i = 0; i < 25; ++i) {
    src.send(Destination::unicast(3, 8), make_payload(200), spec);
  }
  f.sim.run_for(1_s);

  const auto& flows = f.fx.overlay->node(3).session_flows();
  ASSERT_EQ(flows.size(), 1u);
  const FlowStats& fs = flows.begin()->second;
  EXPECT_EQ(fs.origin, 0);
  EXPECT_EQ(fs.src_port, 7);
  EXPECT_EQ(fs.dest.port, 8);
  EXPECT_EQ(fs.link_protocol, LinkProtocol::kReliable);
  EXPECT_EQ(fs.delivered, 25u);
  EXPECT_EQ(fs.bytes, 25u * 200u);
  EXPECT_EQ(fs.highest_seq, 25u);
  EXPECT_EQ(fs.gaps, 0u);
  EXPECT_GT(fs.ewma_latency, Duration::zero());
  EXPECT_GE(fs.max_latency, fs.ewma_latency);
  EXPECT_GT(fs.last_delivery, sim::TimePoint::zero());
}

TEST(FlowStats, SeparatesConcurrentFlows) {
  FlowFixture f;
  auto& c1 = f.fx.overlay->node(0).connect(1);
  auto& c2 = f.fx.overlay->node(1).connect(1);
  auto& dst = f.fx.overlay->node(3).connect(8);
  client::MeasuringSink sink{dst};
  for (int i = 0; i < 10; ++i) {
    c1.send(Destination::unicast(3, 8), make_payload(100), ServiceSpec{});
  }
  for (int i = 0; i < 5; ++i) {
    c2.send(Destination::unicast(3, 8), make_payload(100), ServiceSpec{});
  }
  f.sim.run_for(1_s);
  const auto& flows = f.fx.overlay->node(3).session_flows();
  ASSERT_EQ(flows.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& [key, fs] : flows) total += fs.delivered;
  EXPECT_EQ(total, 15u);
}

TEST(FlowStats, GapsCountLossUnderBestEffort) {
  FlowFixture f;
  // 20% loss on every fiber: best-effort flows lose packets, which must show
  // up as observed sequence gaps at the terminating session.
  for (const auto l : f.fx.fiber) {
    const auto [a, b] = f.fx.internet->link_endpoints(l);
    f.fx.internet->link_dir(l, a).set_loss_model(net::make_bernoulli(0.2));
  }
  auto& src = f.fx.overlay->node(0).connect(1);
  auto& dst = f.fx.overlay->node(3).connect(8);
  client::MeasuringSink sink{dst};
  for (int i = 0; i < 200; ++i) {
    src.send(Destination::unicast(3, 8), make_payload(100), ServiceSpec{});
  }
  f.sim.run_for(2_s);
  const auto& flows = f.fx.overlay->node(3).session_flows();
  ASSERT_EQ(flows.size(), 1u);
  const FlowStats& fs = flows.begin()->second;
  EXPECT_LT(fs.delivered, 200u);
  EXPECT_GT(fs.gaps, 0u);
}

TEST(FlowStats, MulticastFlowCountedAtEachMemberNode) {
  FlowFixture f;
  constexpr GroupId kG = 99;
  auto& m1 = f.fx.overlay->node(2).connect(8);
  auto& m2 = f.fx.overlay->node(4).connect(8);
  m1.join(kG);
  m2.join(kG);
  client::MeasuringSink s1{m1}, s2{m2};
  f.sim.run_for(2_s);
  auto& src = f.fx.overlay->node(0).connect(1);
  for (int i = 0; i < 7; ++i) {
    src.send(Destination::multicast(kG), make_payload(64), ServiceSpec{});
  }
  f.sim.run_for(1_s);
  for (const NodeId n : {2, 4}) {
    const auto& flows = f.fx.overlay->node(n).session_flows();
    ASSERT_EQ(flows.size(), 1u) << "node " << n;
    EXPECT_EQ(flows.begin()->second.delivered, 7u);
    EXPECT_EQ(flows.begin()->second.dest.group, kG);
  }
}

}  // namespace
}  // namespace son::overlay
