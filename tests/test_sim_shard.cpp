// Sharded-kernel unit tests: horizon computation, channel ordering, barrier
// semantics for global events, run_before, component RNG streams, and the
// worker-count invariance contract on a micro topology.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace son::sim {
namespace {

using namespace son::sim::literals;

TimePoint at_ms(std::int64_t ms) { return TimePoint::zero() + Duration::milliseconds(ms); }

// ---- Simulator::run_before -------------------------------------------------

TEST(RunBefore, IsExclusiveAndDoesNotAdvanceClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(at_ms(10), [&]() { fired.push_back(10); });
  sim.schedule_at(at_ms(20), [&]() { fired.push_back(20); });

  EXPECT_EQ(sim.run_before(at_ms(20)), 1u);
  EXPECT_EQ(fired, std::vector<int>({10}));
  // The bound itself did not fire, and the clock sits at the last event, not
  // at the bound — run_before never invents a time with no event on it.
  EXPECT_EQ(sim.now(), at_ms(10));

  EXPECT_EQ(sim.run_until(at_ms(20)), 1u);
  EXPECT_EQ(fired, std::vector<int>({10, 20}));
}

// ---- Horizon computation ---------------------------------------------------

TEST(ShardHorizon, RespectsInChannelLookahead) {
  ShardedKernel k{2};
  k.add_channel(0, 1, Duration::milliseconds(5));

  // Partition 0 has no in-channels: its horizon is the cap. Partition 1 may
  // only run to committed(0) + lookahead.
  EXPECT_EQ(k.horizon_of(0, at_ms(100)), at_ms(100));
  EXPECT_EQ(k.horizon_of(1, at_ms(100)), at_ms(5));
  // A cap below the lookahead bound wins.
  EXPECT_EQ(k.horizon_of(1, at_ms(2)), at_ms(2));
}

TEST(ShardHorizon, AdvancesWithSourceCommit) {
  ShardedKernel k{2};
  k.add_channel(0, 1, Duration::milliseconds(5));
  k.shard_sim(0).schedule_at(at_ms(50), []() {});

  k.run_until(at_ms(50));
  EXPECT_EQ(k.committed(0), at_ms(50));
  EXPECT_EQ(k.committed(1), at_ms(50));
  EXPECT_EQ(k.horizon_of(1, at_ms(1000)), at_ms(55));
}

TEST(ShardHorizon, MinLookaheadReportsTightestChannel) {
  ShardedKernel k{3};
  k.add_channel(0, 1, Duration::milliseconds(5));
  k.add_channel(1, 2, Duration::milliseconds(2));
  EXPECT_EQ(k.min_lookahead(), Duration::milliseconds(2));
}

// ---- Channel ordering ------------------------------------------------------

TEST(ShardChannel, DeliversInTimeOrderWithFifoTies) {
  ShardedKernel k{2};
  ShardChannel& ch = k.add_channel(0, 1, Duration::milliseconds(1));

  std::vector<int> order;
  // Pushed out of time order, with a same-timestamp pair: delivery must be in
  // (time, push order) — the flush preserves buffer order and the destination
  // queue breaks time ties by schedule sequence.
  k.shard_sim(0).schedule_at(at_ms(1), [&]() {
    ch.push(at_ms(30), [&order]() { order.push_back(3); });
    ch.push(at_ms(10), [&order]() { order.push_back(1); });
    ch.push(at_ms(10), [&order]() { order.push_back(2); });
    ch.push(at_ms(40), [&order]() { order.push_back(4); });
  });

  k.run_until(at_ms(100));
  EXPECT_EQ(order, std::vector<int>({1, 2, 3, 4}));
  EXPECT_EQ(ch.total_pushed(), 4u);
}

TEST(ShardChannel, CrossShardPingPongConverges) {
  ShardedKernel k{2};
  ShardChannel& a_to_b = k.add_channel(0, 1, Duration::milliseconds(10));
  ShardChannel& b_to_a = k.add_channel(1, 0, Duration::milliseconds(10));

  // Each side echoes back 10 ms after receipt; times interleave precisely.
  std::vector<std::int64_t> hits;
  std::function<void(int)> bounce = [&](int hops) {
    const PartitionId p = static_cast<PartitionId>(hops % 2);
    Simulator& sim = k.shard_sim(p);
    hits.push_back(sim.now().ns());
    if (hops >= 6) return;
    ShardChannel& out = p == 0 ? a_to_b : b_to_a;
    out.push(sim.now() + Duration::milliseconds(10), [&bounce, hops]() { bounce(hops + 1); });
  };
  k.shard_sim(0).schedule_at(at_ms(0), [&bounce]() { bounce(0); });

  k.run_until(at_ms(200));
  ASSERT_EQ(hits.size(), 7u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], static_cast<std::int64_t>(i) * 10'000'000);
  }
  EXPECT_EQ(k.now(), at_ms(200));
}

#if SON_DCHECK_ENABLED
using ShardChannelDeathTest = ::testing::Test;

TEST(ShardChannelDeathTest, LookaheadViolationAborts) {
  ShardedKernel k{2};
  ShardChannel& ch = k.add_channel(0, 1, Duration::milliseconds(5));
  // when < floor + lookahead: the event would land in the destination's past.
  EXPECT_DEATH(ch.push(at_ms(1), []() {}), "lookahead");
}

TEST(ShardChannelDeathTest, ZeroLookaheadChannelAborts) {
  ShardedKernel k{2};
  EXPECT_DEATH(k.add_channel(0, 1, Duration::zero()), "lookahead");
}
#endif

// ---- Global (control-plane) events ----------------------------------------

TEST(ShardGlobal, RunsAtBarrierBeforePartitionEventsAtSameInstant) {
  ShardedKernel k{2};
  k.add_channel(0, 1, Duration::milliseconds(1));

  bool flag = false;
  bool seen_by_partition = false;
  k.schedule_global(at_ms(10), [&]() { flag = true; });
  // A partition event at exactly the global event's time observes its effect:
  // control runs first at the barrier, with every partition quiesced.
  k.shard_sim(1).schedule_at(at_ms(10), [&]() { seen_by_partition = flag; });

  k.run_until(at_ms(20));
  EXPECT_TRUE(flag);
  EXPECT_TRUE(seen_by_partition);
}

TEST(ShardGlobal, RepeatedRunsAtSameDeadlineTerminate) {
  ShardedKernel k{2};
  k.add_channel(0, 1, Duration::milliseconds(1));
  k.shard_sim(0).schedule_at(at_ms(5), []() {});
  EXPECT_EQ(k.run_until(at_ms(10)), 1u);
  EXPECT_EQ(k.run_until(at_ms(10)), 0u);  // no progress needed, returns
  EXPECT_EQ(k.now(), at_ms(10));
}

// ---- Worker-count invariance ----------------------------------------------

// A micro scenario with per-partition self-traffic, RNG draws, and cross-ring
// pushes. The digest folds every event (partition, time, value) — it must be
// bit-identical for any worker count.
std::uint64_t ring_digest(unsigned workers) {
  constexpr std::size_t kParts = 3;
  ShardedKernel k{kParts, workers};
  std::vector<ShardChannel*> next(kParts);
  for (std::uint32_t p = 0; p < kParts; ++p) {
    next[p] = &k.add_channel(p, (p + 1) % kParts, Duration::milliseconds(3));
  }

  std::vector<std::uint64_t> digest(kParts, 0x9E3779B97F4A7C15ULL);
  std::vector<Rng> rng;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    rng.push_back(component_stream(/*seed=*/7, p, /*component=*/9, /*node=*/0));
  }
  const auto mix = [&digest](std::uint32_t p, std::uint64_t v) {
    digest[p] ^= v + 0x9E3779B97F4A7C15ULL + (digest[p] << 6) + (digest[p] >> 2);
  };

  std::function<void(std::uint32_t, int)> hop = [&](std::uint32_t p, int depth) {
    Simulator& sim = k.shard_sim(p);
    const std::uint64_t draw = rng[p].next_u64();
    mix(p, static_cast<std::uint64_t>(sim.now().ns()) ^ draw);
    if (depth >= 12) return;
    // Local follow-up plus a cross-ring push, both at RNG-jittered offsets.
    sim.schedule(Duration::microseconds(100 + draw % 500),
                 [&hop, p, depth]() { hop(p, depth + 1); });
    next[p]->push(sim.now() + Duration::milliseconds(3) + Duration::microseconds(draw % 900),
                  [&hop, p, depth]() { hop((p + 1) % kParts, depth + 1); });
  };
  for (std::uint32_t p = 0; p < kParts; ++p) {
    k.shard_sim(p).schedule_at(at_ms(static_cast<std::int64_t>(p) + 1),
                               [&hop, p]() { hop(p, 0); });
  }

  k.run_until(at_ms(500));
  std::uint64_t folded = k.events_fired();
  for (std::uint32_t p = 0; p < kParts; ++p) {
    mix(p, k.shard_sim(p).events_fired());
    folded ^= digest[p] * (p + 1);
  }
  return folded;
}

TEST(ShardDeterminism, WorkerCountNeverChangesResults) {
  const std::uint64_t one = ring_digest(1);
  EXPECT_EQ(ring_digest(2), one);
  EXPECT_EQ(ring_digest(3), one);
  // More workers than partitions: clamped, still identical.
  EXPECT_EQ(ring_digest(8), one);
}

// ---- Component RNG streams -------------------------------------------------

TEST(ComponentStream, IsAPureFunctionOfItsKey) {
  // Derivation order must not matter: draw the same tuple's stream before and
  // after constructing unrelated streams — identical sequences.
  Rng direct = component_stream(42, 3, 2, 17);
  const std::uint64_t a0 = direct.next_u64();
  const std::uint64_t a1 = direct.next_u64();

  for (std::uint32_t p = 0; p < 4; ++p) {
    for (std::uint64_t node = 0; node < 20; ++node) {
      (void)component_stream(42, p, 2, node).next_u64();
    }
  }
  Rng again = component_stream(42, 3, 2, 17);
  EXPECT_EQ(again.next_u64(), a0);
  EXPECT_EQ(again.next_u64(), a1);
}

TEST(ComponentStream, DistinctKeysGiveDistinctStreams) {
  const std::uint64_t base = component_stream(42, 1, 2, 3).next_u64();
  EXPECT_NE(component_stream(43, 1, 2, 3).next_u64(), base);  // seed
  EXPECT_NE(component_stream(42, 2, 2, 3).next_u64(), base);  // partition
  EXPECT_NE(component_stream(42, 1, 3, 3).next_u64(), base);  // component
  EXPECT_NE(component_stream(42, 1, 2, 4).next_u64(), base);  // node
}

// The regression the keyed derivation exists to prevent: a sequential
// fork-by-construction-order chain gives node i a DIFFERENT stream when the
// node set is split across partitions (construction order changes per
// layout), while the keyed stream is layout-independent by construction.
TEST(ComponentStream, SequentialForkWouldDependOnLayout) {
  Rng root_a{42};
  Rng root_b{42};
  // Layout A constructs nodes 0,1,2,3; layout B constructs them 2,3,0,1 (two
  // partitions built one after the other). Node 0's sequential fork differs.
  std::vector<std::uint64_t> layout_a, layout_b;
  for (const int id : {0, 1, 2, 3}) layout_a.push_back(root_a.fork(0x4000 + id).next_u64());
  for (const int id : {2, 3, 0, 1}) layout_b.push_back(root_b.fork(0x4000 + id).next_u64());
  EXPECT_EQ(layout_a[0], layout_b[2]);  // fork keyed by id alone is stable...
  EXPECT_EQ(layout_a[2], layout_b[0]);
  // ...the historical failure mode is chains that draw from the parent
  // sequentially, where a partition boundary shifts every later draw:
  Rng seq_a{42};
  std::vector<std::uint64_t> chain_a, chain_b;
  for (int i = 0; i < 4; ++i) chain_a.push_back(seq_a.next_u64());
  Rng seq_b{42};
  (void)seq_b.next_u64();  // partition boundary shifts the draw position
  for (int i = 0; i < 4; ++i) chain_b.push_back(seq_b.next_u64());
  EXPECT_NE(chain_a, chain_b);

  // The keyed stream is identical no matter which order the layouts touch it.
  std::vector<std::uint64_t> keyed_a, keyed_b;
  for (const int id : {0, 1, 2, 3}) {
    keyed_a.push_back(component_stream(42, static_cast<std::uint32_t>(id / 2), 2,
                                       static_cast<std::uint64_t>(id))
                          .next_u64());
  }
  for (const int id : {2, 3, 0, 1}) {
    keyed_b.push_back(component_stream(42, static_cast<std::uint32_t>(id / 2), 2,
                                       static_cast<std::uint64_t>(id))
                          .next_u64());
  }
  // Same tuple → same value, independent of visit order.
  EXPECT_EQ(keyed_a[0], keyed_b[2]);
  EXPECT_EQ(keyed_a[1], keyed_b[3]);
  EXPECT_EQ(keyed_a[2], keyed_b[0]);
  EXPECT_EQ(keyed_a[3], keyed_b[1]);
}

}  // namespace
}  // namespace son::sim
