// Counter registry: null-safe handles, scoped thread-local install, and the
// exp integration — every trial runs inside its own registry and the
// aggregated counter section of a report is bit-identical at any --jobs.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "obs/counters.hpp"
#include "sim/random.hpp"

namespace son::obs {
namespace {

TEST(ObsCounters, HandleIsNoOpWithoutRegistry) {
  ASSERT_EQ(CounterRegistry::current(), nullptr);
  Counter c = counter("orphan");
  EXPECT_FALSE(c.live());
  c.add();     // must be a harmless no-op
  c.set(42);
}

TEST(ObsCounters, RegistersAndSnapshotsInNameOrder) {
  CounterRegistry reg;
  ScopedCounterRegistry scope{reg};
  Counter b = counter("b.count");
  Counter a = counter("a.count");
  EXPECT_TRUE(a.live());
  b.add(2);
  a.add();
  b.add();
  EXPECT_EQ(reg.value("a.count"), 1u);
  EXPECT_EQ(reg.value("b.count"), 3u);
  EXPECT_EQ(reg.value("never.touched"), 0u);
  const auto e = reg.entries();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].first, "a.count");  // name order, not registration order
  EXPECT_EQ(e[1].first, "b.count");
}

TEST(ObsCounters, ScopedInstallNestsAndRestores) {
  ASSERT_EQ(CounterRegistry::current(), nullptr);
  CounterRegistry outer;
  {
    ScopedCounterRegistry s1{outer};
    EXPECT_EQ(CounterRegistry::current(), &outer);
    CounterRegistry inner;
    {
      ScopedCounterRegistry s2{inner};
      EXPECT_EQ(CounterRegistry::current(), &inner);
      counter("x").add();
    }
    EXPECT_EQ(CounterRegistry::current(), &outer);
    EXPECT_EQ(inner.value("x"), 1u);
    EXPECT_EQ(outer.value("x"), 0u);
  }
  EXPECT_EQ(CounterRegistry::current(), nullptr);
}

// Trials bump counters in a seed-dependent way. Experiment::run installs a
// fresh registry around every trial on whichever worker thread executes it,
// so the counter section of the deterministic report must not depend on the
// thread count.
exp::Report run_counter_experiment(unsigned jobs) {
  exp::Options o;
  o.bench = "obs_selftest";
  o.reps = 4;
  o.jobs = jobs;
  o.seed_base = 500;
  o.write_json = false;
  exp::Experiment ex{o};
  for (const int cell : {0, 1}) {
    ex.add_cell("cell" + std::to_string(cell), exp::Json::object(),
                [cell](std::uint64_t seed) {
                  sim::Rng rng{seed + static_cast<std::uint64_t>(cell) * 131};
                  Counter retrans = counter("proto.retransmissions");
                  Counter drops = counter("net.drops");
                  const auto n = 50 + rng.uniform_int(0, 50);
                  for (std::int64_t i = 0; i < n; ++i) retrans.add();
                  drops.add(static_cast<std::uint64_t>(rng.uniform_int(0, 9)));
                  exp::Metrics m;
                  m.scalar("n", static_cast<double>(n));
                  return m;
                });
  }
  return ex.run();
}

TEST(ObsCounters, ExperimentSnapshotsAreIdenticalAcrossJobCounts) {
  const exp::Report serial = run_counter_experiment(1);
  const exp::Report wide = run_counter_experiment(8);
  EXPECT_EQ(serial.jobs(), 1u);
  EXPECT_EQ(wide.jobs(), 8u);
  EXPECT_EQ(serial.results_json(), wide.results_json());
  // The counters really flowed into the aggregate and into the JSON.
  const auto agg = serial.cell("cell0").counter("proto.retransmissions");
  EXPECT_EQ(agg.n, 4u);
  EXPECT_GE(agg.min, 50u);
  EXPECT_LE(agg.max, 100u);
  EXPECT_GE(agg.sum, agg.min * 4);
  EXPECT_NE(serial.results_json().find("proto.retransmissions"), std::string::npos);
}

}  // namespace
}  // namespace son::obs
