// Tests for the XOR-parity FEC extension protocol.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "fake_link.hpp"
#include "overlay/fec.hpp"
#include "overlay/network.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using son::test::FakeLinkPair;
using son::test::make_msg;

struct FecFixture {
  Simulator sim;
  FakeLinkPair pair;
  std::unique_ptr<LinkProtocolEndpoint> a;
  std::unique_ptr<LinkProtocolEndpoint> b;

  explicit FecFixture(double loss, LinkProtocolConfig cfg = {}, std::uint64_t seed = 50)
      : pair{sim, 5_ms, loss, seed} {
    a = make_link_endpoint(LinkProtocol::kFec, pair.ctx_a(), cfg);
    b = make_link_endpoint(LinkProtocol::kFec, pair.ctx_b(), cfg);
    pair.attach(a.get(), b.get());
  }
};

TEST(Fec, CleanLinkDeliversAllWithParityOverhead) {
  FecFixture f{0.0};
  for (std::uint64_t i = 1; i <= 40; ++i) f.a->send(make_msg(i, f.sim.now()));
  f.sim.run_for(1_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 40u);
  auto* tx = dynamic_cast<FecEndpoint*>(f.a.get());
  EXPECT_EQ(tx->stats().data_sent, 40u);
  EXPECT_EQ(tx->stats().parity_sent, 10u);  // K=4 -> 25% overhead
}

TEST(Fec, ReconstructsSingleLossPerGroupWithoutFeedback) {
  // Drop exactly one data frame per group of 5 transmissions (4 data + 1
  // parity): every message still arrives, with zero requests sent back.
  class DropEveryFifth final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return ++n_ % 5 == 1; }
    [[nodiscard]] double average_loss_rate() const override { return 0.2; }

   private:
    int n_ = 0;
  };
  FecFixture f{0.0};
  f.pair.set_loss_a_to_b(std::make_unique<DropEveryFifth>());
  for (std::uint64_t i = 1; i <= 40; ++i) f.a->send(make_msg(i, f.sim.now()));
  f.sim.run_for(1_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 40u);
  auto* rx = dynamic_cast<FecEndpoint*>(f.b.get());
  EXPECT_EQ(rx->stats().reconstructed, 10u);
  // Proactive: not a single frame traveled b -> a.
  // (frames_sent counts both directions; a sent 50, so the total must be 50.)
  EXPECT_EQ(f.pair.frames_sent(), 50u);
}

TEST(Fec, ReconstructedPayloadIsExact) {
  class DropSecond final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return ++n_ == 2; }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    int n_ = 0;
  };
  FecFixture f{0.0};
  f.pair.set_loss_a_to_b(std::make_unique<DropSecond>());
  // Distinct payload contents and sizes per message.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    Message m = make_msg(i, f.sim.now());
    std::vector<std::uint8_t> body(10 * i);
    for (std::size_t j = 0; j < body.size(); ++j) {
      body[j] = static_cast<std::uint8_t>(i * 31 + j);
    }
    m.payload = make_payload(std::move(body));
    f.a->send(std::move(m));
  }
  f.sim.run_for(1_s);
  ASSERT_EQ(f.pair.ctx_b().delivered.size(), 4u);
  // Find the rebuilt message (flow_seq 2) and verify every byte.
  for (const auto& m : f.pair.ctx_b().delivered) {
    const std::uint64_t i = m.hdr.flow_seq;
    ASSERT_EQ(m.payload_size(), 10 * i);
    for (std::size_t j = 0; j < m.payload->size(); ++j) {
      ASSERT_EQ((*m.payload)[j], static_cast<std::uint8_t>(i * 31 + j))
          << "seq " << i << " byte " << j;
    }
  }
}

TEST(Fec, TwoLossesInOneGroupAreUnrecoverable) {
  class DropFirstTwo final : public net::LossModel {
   public:
    bool lose(sim::TimePoint, sim::Rng&) override { return ++n_ <= 2; }
    [[nodiscard]] double average_loss_rate() const override { return 0.0; }

   private:
    int n_ = 0;
  };
  FecFixture f{0.0};
  f.pair.set_loss_a_to_b(std::make_unique<DropFirstTwo>());
  for (std::uint64_t i = 1; i <= 400; ++i) f.a->send(make_msg(i, f.sim.now()));
  f.sim.run_for(1_s);
  EXPECT_EQ(f.pair.ctx_b().delivered.size(), 398u);  // first two gone for good
  auto* rx = dynamic_cast<FecEndpoint*>(f.b.get());
  EXPECT_EQ(rx->stats().reconstructed, 0u);
  EXPECT_EQ(rx->stats().unrecoverable_groups, 1u);  // counted once pruned
}

TEST(Fec, GroupSizeConfigurable) {
  LinkProtocolConfig cfg;
  cfg.fec_group_size = 8;
  FecFixture f{0.0, cfg};
  for (std::uint64_t i = 1; i <= 80; ++i) f.a->send(make_msg(i, f.sim.now()));
  f.sim.run_for(1_s);
  auto* tx = dynamic_cast<FecEndpoint*>(f.a.get());
  EXPECT_EQ(tx->stats().parity_sent, 10u);  // 80/8
}

TEST(Fec, RandomLossStatisticalRecovery) {
  // 5% independent loss, K=4: P(>=2 losses in a 4-frame group) is small;
  // FEC should push residual loss well under 1%.
  FecFixture f{0.05, {}, 51};
  const int n = 4000;
  for (int i = 1; i <= n; ++i) {
    f.sim.schedule(Duration::milliseconds(i), [&f, i]() {
      f.a->send(make_msg(static_cast<std::uint64_t>(i), f.sim.now()));
    });
  }
  f.sim.run_for(10_s);
  const double delivered =
      static_cast<double>(f.pair.ctx_b().delivered.size()) / static_cast<double>(n);
  // Residual = P(frame lost AND group otherwise damaged) ~= p*(1-(1-p)^4)
  // ~= 0.93% at p=5%, so ~99% delivery (vs 95% raw).
  EXPECT_GT(delivered, 0.985);
  auto* rx = dynamic_cast<FecEndpoint*>(f.b.get());
  EXPECT_GT(rx->stats().reconstructed, 100u);
}

TEST(Fec, EndToEndThroughOverlayNodes) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 3;
  auto fx = build_chain(sim, opts, sim::Rng{52});
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.03));
  }
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(2).connect(2);
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = LinkProtocol::kFec;
  client::CbrSender sender{sim, src,
                           {Destination::unicast(2, 2), spec, 500, 600, sim.now(),
                            sim.now() + 10_s}};
  sim.run_for(12_s);
  EXPECT_GT(sink.delivery_ratio(sender.sent()), 0.99);
  EXPECT_EQ(sink.duplicates(), 0u);
  // FEC adds no FEEDBACK latency: reconstruction waits only for the rest of
  // the group + parity (a few ms at 500 pkt/s), never a retransmission RTT.
  EXPECT_LT(sink.latencies_ms().quantile(0.99), 32.0);
}

}  // namespace
}  // namespace son::overlay
