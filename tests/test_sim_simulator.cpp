#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace son::sim {
namespace {

using namespace son::sim::literals;

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.schedule(10_ms, [&]() { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::zero() + 10_ms);
  EXPECT_EQ(sim.now(), TimePoint::zero() + 10_ms);
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10_ms, [&]() { ++fired; });
  sim.schedule(30_ms, [&]() { ++fired; });
  sim.run_until(TimePoint::zero() + 20_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::zero() + 20_ms);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_for(5_ms);
  EXPECT_EQ(sim.now(), TimePoint::zero() + 5_ms);
  sim.run_for(5_ms);
  EXPECT_EQ(sim.now(), TimePoint::zero() + 10_ms);
}

TEST(Simulator, EventAtDeadlineFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule(10_ms, [&]() { fired = true; });
  sim.run_until(TimePoint::zero() + 10_ms);
  EXPECT_TRUE(fired);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(5_ms, [&]() {
    // From inside an event, scheduling with negative delay must not move
    // time backwards.
    sim.schedule(-3_ms, [&]() { EXPECT_EQ(sim.now(), TimePoint::zero() + 5_ms); });
  });
  sim.run();
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.schedule(5_ms, [&]() {
    sim.schedule_at(TimePoint::zero(), [&]() { EXPECT_GE(sim.now(), TimePoint::zero() + 5_ms); });
  });
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, CascadingEventsRunToCompletion) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) sim.schedule(1_ms, recurse);
  };
  sim.schedule(1_ms, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), TimePoint::zero() + 100_ms);
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(10_ms, [&]() { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, EventsFiredCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(Duration::milliseconds(i), []() {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(Simulator, DeterministicInterleaving) {
  const auto run_once = []() {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule(Duration::milliseconds(i % 7), [&order, i]() { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace son::sim
