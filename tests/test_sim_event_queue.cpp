#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace son::sim {
namespace {

using namespace son::sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::milliseconds(ms); }

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&]() { order.push_back(3); });
  q.schedule(at(10), [&]() { order.push_back(1); });
  q.schedule(at(20), [&]() { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(at(10), [&]() { ++fired; });
  q.schedule(at(20), [&]() { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(at(10), []() {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelFiredEventIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(at(10), []() {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.schedule(at(10), []() {});
  q.schedule(at(20), []() {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), at(20));
}

TEST(EventQueue, PopReturnsTimeAndCallback) {
  EventQueue q;
  int x = 0;
  q.schedule(at(7), [&]() { x = 42; });
  auto fired = q.pop();
  EXPECT_EQ(fired.time, at(7));
  fired.cb();
  EXPECT_EQ(x, 42);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(at(i), []() {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(at(i), [&]() { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace son::sim
