#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <tuple>
#include <memory>
#include <vector>

namespace son::sim {
namespace {

using namespace son::sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::milliseconds(ms); }

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  std::ignore = q.schedule(at(30), [&]() { order.push_back(3); });
  std::ignore = q.schedule(at(10), [&]() { order.push_back(1); });
  std::ignore = q.schedule(at(20), [&]() { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    std::ignore = q.schedule(at(5), [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(at(10), [&]() { ++fired; });
  std::ignore = q.schedule(at(20), [&]() { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(at(10), []() {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelFiredEventIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(at(10), []() {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.schedule(at(10), []() {});
  std::ignore = q.schedule(at(20), []() {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.next_time(), at(20));
}

TEST(EventQueue, PopReturnsTimeAndCallback) {
  EventQueue q;
  int x = 0;
  std::ignore = q.schedule(at(7), [&]() { x = 42; });
  auto fired = q.pop();
  EXPECT_EQ(fired.time, at(7));
  fired.cb();
  EXPECT_EQ(x, 42);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) std::ignore = q.schedule(at(i), []() {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// ---- Slot-pool semantics ---------------------------------------------------

TEST(EventQueue, IdsStayUniqueAcrossSlotReuse) {
  EventQueue q;
  std::vector<EventId> seen;
  // Fire-and-reschedule reuses pool slots heavily; every id must be fresh.
  for (int round = 0; round < 100; ++round) {
    seen.push_back(q.schedule(at(round), []() {}));
    q.pop();
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(EventQueue, StaleIdCannotCancelSlotsNextOccupant) {
  EventQueue q;
  const EventId old_id = q.schedule(at(10), []() {});
  q.pop();  // fires; the slot is recycled
  int fired = 0;
  std::ignore = q.schedule(at(20), [&]() { ++fired; });  // reuses the slot
  EXPECT_FALSE(q.cancel(old_id));          // stale generation: no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelledIdStaysStaleAfterSlotReuse) {
  EventQueue q;
  const EventId a = q.schedule(at(10), []() {});
  EXPECT_TRUE(q.cancel(a));
  std::ignore = q.schedule(at(5), []() {});  // new slot; cancelled entry still in heap
  q.pop();                     // surfaces + retires the cancelled entry too
  int fired = 0;
  std::ignore = q.schedule(at(30), [&]() { ++fired; });  // may reuse a's slot
  EXPECT_FALSE(q.cancel(a));
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ClearInvalidatesOutstandingIds) {
  EventQueue q;
  const EventId a = q.schedule(at(10), []() {});
  q.clear();
  int fired = 0;
  std::ignore = q.schedule(at(10), [&]() { ++fired; });  // reuses slot 0 post-clear
  EXPECT_FALSE(q.cancel(a));
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, LargeCallablesFallBackToHeapStorage) {
  EventQueue q;
  std::array<std::uint64_t, 64> big{};  // 512 bytes — beyond the inline buffer
  big[0] = 7;
  big[63] = 9;
  std::uint64_t sum = 0;
  std::ignore = q.schedule(at(1), [big, &sum]() { sum = big[0] + big[63]; });
  q.pop().cb();
  EXPECT_EQ(sum, 16u);
}

TEST(EventQueue, MoveOnlyCallablesAreSupported) {
  EventQueue q;
  auto owned = std::make_unique<int>(41);
  int got = 0;
  // std::function required copyable callables; the pooled Callback does not.
  std::ignore = q.schedule(at(1), [owned = std::move(owned), &got]() { got = *owned + 1; });
  q.pop().cb();
  EXPECT_EQ(got, 42);
}

TEST(EventQueue, CancelReleasesCapturedStateEagerly) {
  EventQueue q;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  const EventId id = q.schedule(at(100), [token = std::move(token)]() {});
  EXPECT_TRUE(q.cancel(id));
  // The entry is still in the heap (lazy removal) but the closure is gone.
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(at(i), [&]() { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), 500u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace son::sim
