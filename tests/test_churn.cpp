// Churn-driven overlay maintenance: liveness-prober hysteresis, the
// membership database, (incarnation, seq) freshness in the shared state
// databases, departed-origin eviction, and the end-to-end regressions the
// static-membership assumption used to hide (dedup across a restart,
// per-link protocol reset on a peer's restart, per-source-tag IT fairness).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "client/traffic.hpp"
#include "overlay/churn.hpp"
#include "overlay/membership.hpp"
#include "overlay/network.hpp"
#include "overlay/routing.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;

// ---- LivenessProber hysteresis ----------------------------------------------

TEST(LivenessProber, SingleMissDoesNotFlap) {
  LivenessProber p;  // default: down after 3 misses
  EXPECT_TRUE(p.up());
  EXPECT_FALSE(p.on_miss());
  EXPECT_FALSE(p.on_miss());
  EXPECT_TRUE(p.up());
  EXPECT_TRUE(p.on_miss());  // third consecutive miss flips the verdict
  EXPECT_FALSE(p.up());
  EXPECT_FALSE(p.on_miss());  // already down: no second flip
}

TEST(LivenessProber, SuccessResetsMissStreak) {
  LivenessProber p;
  (void)p.on_miss();
  (void)p.on_miss();
  EXPECT_FALSE(p.on_success());  // already up: no flip, streak cleared
  (void)p.on_miss();
  (void)p.on_miss();
  EXPECT_TRUE(p.up());  // the two pre-success misses must not count
  EXPECT_TRUE(p.on_miss());
}

TEST(LivenessProber, UpHysteresisRequiresSuccessStreak) {
  LivenessProber p{LivenessProber::Config{3, 2}};
  (void)p.on_miss();
  (void)p.on_miss();
  ASSERT_TRUE(p.on_miss());
  EXPECT_FALSE(p.on_success());  // one lucky reply is not revival
  EXPECT_FALSE(p.up());
  EXPECT_TRUE(p.on_success());
  EXPECT_TRUE(p.up());
}

TEST(LivenessProber, MissResetsSuccessStreak) {
  LivenessProber p{LivenessProber::Config{3, 2}};
  for (int i = 0; i < 3; ++i) (void)p.on_miss();
  ASSERT_FALSE(p.up());
  EXPECT_FALSE(p.on_success());
  EXPECT_FALSE(p.on_miss());  // breaks the streak while down
  EXPECT_FALSE(p.on_success());
  EXPECT_TRUE(p.on_success());
  EXPECT_TRUE(p.up());
}

TEST(LivenessProber, ResetRestoresOptimism) {
  LivenessProber p;
  for (int i = 0; i < 5; ++i) (void)p.on_miss();
  ASSERT_FALSE(p.up());
  p.reset();
  EXPECT_TRUE(p.up());
  EXPECT_EQ(p.consecutive_misses(), 0u);
}

// ---- MembershipDb -----------------------------------------------------------

TEST(MembershipDb, HeardFromCountsLifetimes) {
  MembershipDb db{4};
  const auto t1 = sim::TimePoint::zero() + 1_s;
  const auto t2 = sim::TimePoint::zero() + 2_s;
  EXPECT_TRUE(db.heard_from(2, 0, t1));  // first contact = join
  EXPECT_EQ(db.entry(2).joins, 1u);
  EXPECT_TRUE(db.entry(2).alive);
  EXPECT_FALSE(db.heard_from(2, 0, t2));  // more evidence, same life
  EXPECT_EQ(db.entry(2).joins, 1u);
  EXPECT_EQ(db.entry(2).last_heard, t2);
  EXPECT_TRUE(db.heard_from(2, 1, t2));  // incarnation bump = rejoin
  EXPECT_EQ(db.entry(2).joins, 2u);
  EXPECT_EQ(db.entry(2).incarnation, 1u);
  EXPECT_EQ(db.alive_count(), 1u);
}

TEST(MembershipDb, OlderIncarnationGhostIgnored) {
  MembershipDb db{4};
  const auto t1 = sim::TimePoint::zero() + 1_s;
  const auto t2 = sim::TimePoint::zero() + 2_s;
  ASSERT_TRUE(db.heard_from(1, 2, t1));
  EXPECT_FALSE(db.heard_from(1, 1, t2));  // pre-crash ghost
  EXPECT_EQ(db.entry(1).incarnation, 2u);
  EXPECT_EQ(db.entry(1).last_heard, t1);  // ghosts are not liveness evidence
}

TEST(MembershipDb, SweepDepartsSilentOriginsAscending) {
  MembershipDb db{5};
  const auto t1 = sim::TimePoint::zero() + 1_s;
  (void)db.heard_from(3, 0, t1);
  (void)db.heard_from(1, 0, t1);
  (void)db.heard_from(4, 0, sim::TimePoint::zero() + 10_s);
  std::vector<NodeId> departed;
  db.sweep(sim::TimePoint::zero() + 5_s, departed);
  EXPECT_EQ(departed, (std::vector<NodeId>{1, 3}));  // deterministic order
  EXPECT_FALSE(db.entry(1).alive);
  EXPECT_TRUE(db.entry(4).alive);
  EXPECT_EQ(db.alive_count(), 1u);
  // Same-incarnation evidence after an eviction is life after death: rejoin.
  EXPECT_TRUE(db.heard_from(1, 0, sim::TimePoint::zero() + 11_s));
  EXPECT_EQ(db.entry(1).joins, 2u);
}

TEST(MembershipDb, OutOfRangeOriginIgnored) {
  MembershipDb db{4};
  EXPECT_FALSE(db.heard_from(99, 0, sim::TimePoint::zero()));
  EXPECT_EQ(db.alive_count(), 0u);
}

// ---- ChurnModel parsing -----------------------------------------------------

TEST(ChurnModel, StringRoundTrip) {
  EXPECT_EQ(churn_model_from_string("poisson"), ChurnModel::kPoisson);
  EXPECT_EQ(churn_model_from_string("periodic"), ChurnModel::kPeriodic);
  EXPECT_EQ(churn_model_from_string("weibull"), std::nullopt);
  EXPECT_STREQ(to_string(ChurnModel::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ChurnModel::kPeriodic), "periodic");
}

// ---- (incarnation, seq) freshness in the shared state DBs -------------------

topo::Graph square() {
  topo::Graph g(4);
  g.add_edge(0, 1, 1);  // bit 0
  g.add_edge(1, 3, 1);  // bit 1
  g.add_edge(0, 2, 3);  // bit 2
  g.add_edge(2, 3, 3);  // bit 3
  return g;
}

TEST(TopologyDbIncarnation, FreshIncarnationLowSeqBeatsOldHighSeq) {
  TopologyDb db{square()};
  ASSERT_TRUE(db.apply({0, 9, {{0, true, 1.0, 0.0}}}));  // life 0, seq 9
  LinkStateAd rejoin{0, 1, {{0, true, 2.0, 0.0}}, 1};    // life 1, seq 1
  EXPECT_TRUE(db.apply(rejoin));
  EXPECT_EQ(db.stored_incarnation(0), 1u);
  EXPECT_EQ(db.stored_seq(0), 1u);
  // A high-seq flood from the previous life, still in flight, is stale.
  LinkStateAd ghost{0, 10, {{0, true, 5.0, 0.0}}, 0};
  EXPECT_FALSE(db.apply(ghost));
  EXPECT_NEAR(db.link_cost(0), 2.0, 1e-9);
}

TEST(TopologyDbIncarnation, EvictOriginDropsReportsKeepsFloor) {
  TopologyDb db{square()};
  LinkStateAd ad{0, 5, {{0, false, 1.0, 0.0}}, 1};
  ASSERT_TRUE(db.apply(ad));
  ASSERT_FALSE(db.link_up(0));
  const std::uint64_t v = db.version();
  EXPECT_TRUE(db.evict_origin(0));
  EXPECT_GT(db.version(), v);  // consumers see the change
  EXPECT_TRUE(db.link_up(0));  // no reports left: design default
  EXPECT_FALSE(db.evict_origin(0));
  // The departed life's floods cannot re-install state...
  EXPECT_FALSE(db.apply(ad));
  LinkStateAd stale{0, 4, {{0, false, 1.0, 0.0}}, 1};
  EXPECT_FALSE(db.apply(stale));
  // ...but genuinely newer evidence (the origin is in fact alive) applies.
  LinkStateAd newer{0, 6, {{0, true, 7.0, 0.0}}, 1};
  EXPECT_TRUE(db.apply(newer));
}

TEST(GroupDbIncarnation, RestartedOriginSupersedesAndEvictKeepsFloor) {
  GroupDb db{4};
  ASSERT_TRUE(db.apply({2, 3, {7}}));
  GroupStateAd rejoin{2, 1, {8}, 1};
  EXPECT_TRUE(db.apply(rejoin));
  EXPECT_FALSE(db.is_member(2, 7));  // previous life's joins are gone
  EXPECT_TRUE(db.is_member(2, 8));
  EXPECT_TRUE(db.evict_origin(2));
  EXPECT_FALSE(db.is_member(2, 8));
  EXPECT_FALSE(db.evict_origin(2));
  EXPECT_FALSE(db.apply(rejoin));  // stale flood of the departed life
  GroupStateAd newer{2, 2, {9}, 1};
  EXPECT_TRUE(db.apply(newer));
  EXPECT_TRUE(db.is_member(2, 9));
}

// ---- Router departed-origin cache eviction ----------------------------------

TEST(RouterCaches, EvictOriginDropsDepartedEntriesOnly) {
  TopologyDb db{square()};
  GroupDb groups{4};
  Router router{0, db, groups};
  groups.apply({2, 1, {7}});
  groups.apply({3, 1, {7}});
  (void)router.multicast_links(2, 7, kInvalidLinkBit);  // tree rooted at 2
  (void)router.multicast_links(1, 7, kInvalidLinkBit);
  ServiceSpec spec;
  spec.scheme = RouteScheme::kDisjointPaths;
  spec.num_paths = 2;
  (void)router.source_mask(spec, 2);  // mask toward 2
  (void)router.source_mask(spec, 3);
  ASSERT_EQ(router.tree_cache_size(), 2u);
  ASSERT_EQ(router.mask_cache_size(), 2u);

  EXPECT_EQ(router.evict_origin(2), 2u);  // its tree root + its mask dst
  EXPECT_EQ(router.tree_cache_size(), 1u);
  EXPECT_EQ(router.mask_cache_size(), 1u);
  EXPECT_EQ(router.evict_origin(2), 0u);  // idempotent
}

// ---- Membership integration: detect, evict, rejoin --------------------------

TEST(MembershipIntegration, CrashedNodeIsDepartedAndRejoinsOnRestart) {
  Simulator sim;
  GraphOptions gopts;
  gopts.node.dead_origin_timeout = 2500_ms;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{31});
  fx.overlay->settle(3_s);
  constexpr GroupId kG = 60;
  auto& member = fx.overlay->node(4).connect(10);
  member.join(kG);
  sim.run_for(1_s);
  auto& observer = fx.overlay->node(0);
  ASSERT_TRUE(observer.groups().is_member(4, kG));
  ASSERT_TRUE(observer.membership().entry(4).alive);

  ChurnScript script{*fx.overlay};
  script.crash(sim.now() + 100_ms, 4);
  sim.run_for(5_s);
  // Silence past dead_origin_timeout: departed, and every per-origin trace
  // of it evicted (the group join goes with its clients).
  EXPECT_FALSE(observer.membership().entry(4).alive);
  EXPECT_GE(observer.stats().origin_evictions, 1u);
  EXPECT_FALSE(observer.groups().is_member(4, kG));
  EXPECT_TRUE(std::isinf(observer.router().path_cost_to(4)));

  script.recover(sim.now() + 100_ms, 4);
  sim.run_for(3_s);
  // Fresh incarnation re-floods: readmitted, group join re-learned.
  EXPECT_EQ(fx.overlay->node(4).incarnation(), 1u);
  EXPECT_TRUE(observer.membership().entry(4).alive);
  EXPECT_EQ(observer.membership().entry(4).incarnation, 1u);
  EXPECT_GE(observer.membership().entry(4).joins, 2u);
  EXPECT_TRUE(observer.groups().is_member(4, kG));
  EXPECT_FALSE(std::isinf(observer.router().path_cost_to(4)));
}

// ---- Regression: dedup across a restart -------------------------------------

// Pre-incarnation, a restarted origin's id counter began again at 1, so its
// new messages collided with its old ids in every receiver's dedup cache and
// the whole second batch was silently dropped. The incarnation byte folded
// into origin ids keeps the lives disjoint.
TEST(RestartRegression, FloodedTrafficSurvivesOriginRestart) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{32});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(3).connect(2);
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.scheme = RouteScheme::kFlooding;  // every copy crosses every receiver's dedup
  for (int i = 0; i < 10; ++i) {
    src.send(Destination::unicast(3, 2), make_payload(100), spec);
  }
  sim.run_for(1_s);
  ASSERT_EQ(sink.received(), 10u);

  fx.overlay->node(0).restart();
  sim.run_for(1_s);
  EXPECT_EQ(fx.overlay->node(0).incarnation(), 1u);
  for (int i = 0; i < 10; ++i) {
    src.send(Destination::unicast(3, 2), make_payload(100), spec);
  }
  sim.run_for(2_s);
  EXPECT_EQ(sink.received(), 20u);
  EXPECT_EQ(sink.duplicates(), 0u);
}

// ---- Regression: per-link protocol reset on a peer's restart ----------------

// Pre-incarnation, the receiver's reliable-link window survived its peer's
// restart: the restarted sender's seq 1..5 looked like duplicates of the old
// life's and the ARQ dropped them all (while acking, so no retransmission
// saved them either).
TEST(RestartRegression, ReliableLinkResetsWhenPeerRestarts) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 2;
  auto fx = build_chain(sim, opts, sim::Rng{33});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(1).connect(11);
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.link_protocol = LinkProtocol::kReliable;
  for (int i = 0; i < 5; ++i) {
    src.send(Destination::unicast(1, 11), make_payload(100), spec);
  }
  sim.run_for(1_s);
  ASSERT_EQ(sink.received(), 5u);

  fx.overlay->node(0).restart();
  sim.run_for(1_s);
  for (int i = 0; i < 5; ++i) {
    src.send(Destination::unicast(1, 11), make_payload(100), spec);
  }
  sim.run_for(2_s);
  EXPECT_EQ(sink.received(), 10u);
  EXPECT_GE(fx.overlay->node(1).stats().peer_restarts_seen, 1u);
}

// ---- Regression: IT-Priority fairness is per traffic source, not per node ---

// FlowEngine flows share one origin node. With the fairness key collapsed to
// the origin, one aggressive flow monopolized its node's round-robin slot
// and per-source buffer, starving every well-behaved flow from the same
// node. The key is now (origin, source_tag).
TEST(FairnessRegression, AggressiveFlowCannotStarveSiblingsFromSameNode) {
  Simulator sim;
  topo::Graph g(3);  // line: 0 --2ms-- 1 --5ms-- 2
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 5);
  GraphOptions gopts;
  gopts.node.link_protocols.it_egress_msgs_per_sec = 400;
  gopts.node.link_protocols.it_buffer_per_source = 32;
  auto fx = build_graph_fixture(sim, g, gopts, sim::Rng{34});
  fx.overlay->settle(2_s);

  auto& dst = fx.overlay->node(2).connect(50);
  std::map<std::uint32_t, int> got;  // per source_tag deliveries
  dst.set_handler([&](const Message& m, Duration) { ++got[m.hdr.source_tag]; });

  ServiceSpec spec;
  spec.link_protocol = LinkProtocol::kITPriority;
  struct TagFlow {
    Simulator& sim;
    ClientEndpoint& src;
    ServiceSpec spec;
    std::uint32_t tag;
    Duration period;
    sim::TimePoint stop;
    std::uint64_t seq = 0;
    void tick() {
      if (sim.now() >= stop) return;
      (void)src.send_flow(Destination::unicast(2, 50), make_payload(100), spec, tag, ++seq);
      sim.schedule(period, [this]() { tick(); });
    }
  };
  // One endpoint, three flows: an aggressive one at 5x the egress rate and
  // two victims comfortably under their fair share (400/3 per sec).
  auto& src = fx.overlay->node(0).connect(10);
  const sim::TimePoint stop = sim.now() + 8_s;
  std::vector<std::unique_ptr<TagFlow>> flows;
  flows.push_back(std::make_unique<TagFlow>(TagFlow{sim, src, spec, 99, 500_us, stop}));
  flows.push_back(std::make_unique<TagFlow>(TagFlow{sim, src, spec, 1, 20_ms, stop}));
  flows.push_back(std::make_unique<TagFlow>(TagFlow{sim, src, spec, 2, 20_ms, stop}));
  for (auto& f : flows) sim.schedule(1_ms, [p = f.get()]() { p->tick(); });
  sim.run_for(10_s);

  // Victims sent ~400 each; with per-tag fairness they keep essentially all
  // of it. With the origin-only key they got the eviction-survivor residue
  // (~20%), so the bound also discriminates.
  EXPECT_GT(got[1], 340);
  EXPECT_GT(got[2], 340);
  // The aggressor is bounded by the paced egress, not by its send rate.
  EXPECT_LT(got[99], 8 * 400);
  EXPECT_GT(got[99], 100);  // but it does keep its own share
}

}  // namespace
}  // namespace son::overlay
