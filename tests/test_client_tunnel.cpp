// Tests for the packet-interception tunnel gateway and the traffic helpers.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "client/tunnel.hpp"
#include "overlay/network.hpp"

namespace son::client {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;

/// A 4-node chain overlay plus two remote "app" hosts hanging off the edge
/// routers — the unmodified applications whose traffic gets intercepted.
struct TunnelFixture {
  Simulator sim;
  overlay::ChainFixture fx;
  net::HostId app_a = net::kInvalidHost;
  net::HostId app_b = net::kInvalidHost;
  std::unique_ptr<TunnelGateway> gw_ingress;
  std::unique_ptr<TunnelGateway> gw_egress;

  TunnelFixture() {
    overlay::ChainOptions opts;
    opts.n_nodes = 4;
    opts.hop_latency = 10_ms;
    fx = overlay::build_chain(sim, opts, sim::Rng{21});

    // App hosts attach near the chain's ends.
    auto& inet = *fx.internet;
    app_a = inet.add_host("app-a");
    app_b = inet.add_host("app-b");
    net::LinkConfig access;
    access.prop_delay = sim::Duration::microseconds(100);
    // Routers 0 and 3 are the chain's edge routers (added first, in order).
    inet.attach_host(app_a, 0, access);
    inet.attach_host(app_b, 3, access);

    gw_ingress = std::make_unique<TunnelGateway>(inet, fx.overlay->node(0));
    gw_egress = std::make_unique<TunnelGateway>(inet, fx.overlay->node(3));
    fx.overlay->settle(3_s);
  }
};

TEST(Tunnel, UnmodifiedAppTrafficRidesTheOverlay) {
  TunnelFixture f;
  TunnelGateway::Rule rule;
  rule.service_port = 443;
  rule.app_dst_host = f.app_b;
  rule.app_dst_port = 443;
  rule.egress_node = 3;
  rule.service.link_protocol = overlay::LinkProtocol::kReliable;
  f.gw_ingress->add_rule(rule);

  // The unmodified app: plain datagrams, no overlay API anywhere.
  std::vector<std::string> got;
  f.fx.internet->bind(f.app_b, [&](const net::Datagram& d) {
    const auto* body = d.payload.get<std::vector<std::uint8_t>>();
    ASSERT_NE(body, nullptr);
    got.push_back(std::string{body->begin(), body->end()});
    EXPECT_EQ(d.dst_port, 443);
  });
  net::Datagram d;
  d.src = f.app_a;
  d.dst = f.fx.overlay->node(0).host();  // the redirect target
  d.src_port = 5555;
  d.dst_port = 443;
  d.payload = std::vector<std::uint8_t>{'G', 'E', 'T', ' ', '/'};
  f.fx.internet->send(std::move(d));
  f.sim.run_for(500_ms);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "GET /");
  EXPECT_EQ(f.gw_ingress->stats().intercepted, 1u);
  EXPECT_EQ(f.gw_egress->stats().reemitted, 1u);
}

TEST(Tunnel, UnprovisionedPortIsNotIntercepted) {
  TunnelFixture f;
  TunnelGateway::Rule rule;
  rule.service_port = 443;
  rule.app_dst_host = f.app_b;
  rule.app_dst_port = 443;
  rule.egress_node = 3;
  f.gw_ingress->add_rule(rule);

  net::Datagram d;
  d.src = f.app_a;
  d.dst = f.fx.overlay->node(0).host();
  d.dst_port = 80;  // no rule/binding for port 80
  d.payload = std::vector<std::uint8_t>{'x'};
  f.fx.internet->send(std::move(d));
  f.sim.run_for(200_ms);
  EXPECT_EQ(f.gw_ingress->stats().intercepted, 0u);
  EXPECT_EQ(f.gw_egress->stats().reemitted, 0u);
  EXPECT_GE(f.fx.internet->counters().dropped[static_cast<int>(
                net::DropReason::kNoHandler)],
            1u);
}

TEST(Tunnel, TunneledTrafficGetsOverlayRecovery) {
  TunnelFixture f;
  // 10% loss on the middle fiber; the reliable tunnel service recovers it.
  const auto link = f.fx.hop_links[1];
  const auto [a, b] = f.fx.internet->link_endpoints(link);
  f.fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.1));

  TunnelGateway::Rule rule;
  rule.service_port = 443;
  rule.app_dst_host = f.app_b;
  rule.app_dst_port = 443;
  rule.egress_node = 3;
  rule.service.link_protocol = overlay::LinkProtocol::kReliable;
  f.gw_ingress->add_rule(rule);

  int got = 0;
  f.fx.internet->bind(f.app_b, [&](const net::Datagram&) { ++got; });
  for (int i = 0; i < 200; ++i) {
    net::Datagram d;
    d.src = f.app_a;
    d.dst = f.fx.overlay->node(0).host();
    d.src_port = 5555;
    d.dst_port = 443;
    d.payload = std::vector<std::uint8_t>(100, 0x42);
    f.fx.internet->send(std::move(d));
  }
  f.sim.run_for(5_s);
  EXPECT_EQ(got, 200);
}

TEST(Tunnel, PreservesAppAddressing) {
  TunnelFixture f;
  TunnelGateway::Rule rule;
  rule.service_port = 7777;
  rule.app_dst_host = f.app_b;
  rule.app_dst_port = 8888;  // port rewrite at egress (DNAT-like)
  rule.egress_node = 3;
  f.gw_ingress->add_rule(rule);
  std::uint16_t seen_src_port = 0, seen_dst_port = 0;
  f.fx.internet->bind(f.app_b, [&](const net::Datagram& d) {
    seen_src_port = d.src_port;
    seen_dst_port = d.dst_port;
  });
  net::Datagram d;
  d.src = f.app_a;
  d.dst = f.fx.overlay->node(0).host();
  d.src_port = 1234;
  d.dst_port = 7777;
  d.payload = std::vector<std::uint8_t>{'z'};
  f.fx.internet->send(std::move(d));
  f.sim.run_for(500_ms);
  EXPECT_EQ(seen_src_port, 1234);
  EXPECT_EQ(seen_dst_port, 8888);
}

// ---- Traffic helper edge cases ------------------------------------------------

TEST(Traffic, CbrSenderStopsAtStopTime) {
  Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(6), gopts,
                                         sim::Rng{22});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  CbrSender sender{sim, src,
                   {overlay::Destination::unicast(3, 2), overlay::ServiceSpec{}, 100, 50,
                    sim.now(), sim.now() + 1_s}};
  sim.run_for(5_s);
  EXPECT_EQ(sender.sent(), 100u);
}

TEST(Traffic, PoissonSenderApproximatesRate) {
  Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(6), gopts,
                                         sim::Rng{23});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  PoissonSender sender{sim,
                       src,
                       {overlay::Destination::unicast(3, 2), overlay::ServiceSpec{}, 200,
                        50, sim.now(), sim.now() + 20_s},
                       sim::Rng{24}};
  sim.run_for(25_s);
  EXPECT_NEAR(static_cast<double>(sender.sent()), 4000.0, 250.0);
}

TEST(Traffic, MeasuringSinkCountsDuplicatesSeparately) {
  Simulator sim;
  overlay::GraphOptions gopts;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(6), gopts,
                                         sim::Rng{25});
  fx.overlay->settle(3_s);
  auto& dst = fx.overlay->node(3).connect(2);
  MeasuringSink sink{dst};
  auto& src = fx.overlay->node(0).connect(1);
  overlay::ServiceSpec spec;
  spec.scheme = overlay::RouteScheme::kFlooding;  // redundant copies en route
  for (int i = 0; i < 20; ++i) {
    src.send(overlay::Destination::unicast(3, 2), overlay::make_payload(10), spec);
  }
  sim.run_for(1_s);
  EXPECT_EQ(sink.received(), 20u);
  EXPECT_EQ(sink.duplicates(), 0u);  // dedup happens at the NODE, not client
}

}  // namespace
}  // namespace son::client
