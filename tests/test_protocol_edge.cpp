// Protocol edge cases: asymmetric (feedback-path) loss, retransmission
// bounds, wire-size accounting, and IT-Reliable interleaving.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "fake_link.hpp"
#include "overlay/network.hpp"
#include "overlay/fec.hpp"
#include "overlay/it_fair.hpp"
#include "overlay/realtime.hpp"
#include "overlay/reliable_link.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using son::test::FakeLinkPair;
using son::test::make_msg;

TEST(ReliableEdge, SurvivesAckPathLoss) {
  // Heavy loss on the b->a (ack) direction only: data flows cleanly, acks
  // die. Delivery must still be exactly-once; the cost is retransmissions
  // the receiver dedups.
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 61};
  pair.set_loss_b_to_a(net::make_bernoulli(0.7));
  auto a = make_link_endpoint(LinkProtocol::kReliable, pair.ctx_a(), {});
  auto b = make_link_endpoint(LinkProtocol::kReliable, pair.ctx_b(), {});
  pair.attach(a.get(), b.get());
  const int n = 200;
  for (int i = 1; i <= n; ++i) {
    sim.schedule(Duration::milliseconds(i * 2), [&, i]() {
      a->send(make_msg(static_cast<std::uint64_t>(i), sim.now()));
    });
  }
  sim.run_for(30_s);
  EXPECT_EQ(pair.ctx_b().delivered.size(), static_cast<std::size_t>(n));
  auto* rx = dynamic_cast<ReliableLinkEndpoint*>(b.get());
  EXPECT_GT(rx->stats().duplicates_received, 0u);  // retransmissions arrived twice
}

TEST(ReliableEdge, RetransmissionsBoundedOnCleanLink) {
  // Zero loss: the protocol must not retransmit at all (no spurious RTOs
  // under steady traffic with healthy RTT estimates).
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 62};
  auto a = make_link_endpoint(LinkProtocol::kReliable, pair.ctx_a(), {});
  auto b = make_link_endpoint(LinkProtocol::kReliable, pair.ctx_b(), {});
  pair.attach(a.get(), b.get());
  for (int i = 1; i <= 500; ++i) {
    sim.schedule(Duration::milliseconds(i), [&, i]() {
      a->send(make_msg(static_cast<std::uint64_t>(i), sim.now()));
    });
  }
  sim.run_for(5_s);
  auto* tx = dynamic_cast<ReliableLinkEndpoint*>(a.get());
  EXPECT_EQ(tx->stats().retransmissions, 0u);
  EXPECT_EQ(pair.ctx_b().delivered.size(), 500u);
}

TEST(RealtimeEdge2, RequestPathLossCoveredByNStrikes) {
  // All but the last request die on the feedback path: with N=3 the third
  // request still triggers recovery; with N=1 the packet is lost.
  const auto run = [](std::uint8_t n_req) {
    Simulator sim;
    FakeLinkPair pair{sim, 5_ms, 0.0, 63};

    class DropFirstData final : public net::LossModel {
     public:
      bool lose(sim::TimePoint, sim::Rng&) override { return std::exchange(first_, false); }
      [[nodiscard]] double average_loss_rate() const override { return 0.0; }

     private:
      bool first_ = true;
    };
    class DropFirstTwo final : public net::LossModel {
     public:
      bool lose(sim::TimePoint, sim::Rng&) override { return ++n_ <= 2; }
      [[nodiscard]] double average_loss_rate() const override { return 0.0; }

     private:
      int n_ = 0;
    };
    pair.set_loss_a_to_b(std::make_unique<DropFirstData>());
    pair.set_loss_b_to_a(std::make_unique<DropFirstTwo>());
    auto a = make_link_endpoint(LinkProtocol::kRealtimeNM, pair.ctx_a(), {});
    auto b = make_link_endpoint(LinkProtocol::kRealtimeNM, pair.ctx_b(), {});
    pair.attach(a.get(), b.get());
    Message m1 = make_msg(1, sim.now());
    m1.hdr.deadline = 200_ms;
    m1.hdr.nm_requests = n_req;
    a->send(std::move(m1));
    sim.schedule(5_ms, [&]() {
      Message m2 = make_msg(2, sim.now());
      m2.hdr.deadline = 200_ms;
      m2.hdr.nm_requests = n_req;
      a->send(std::move(m2));
    });
    sim.run_for(2_s);
    return pair.ctx_b().delivered.size();
  };
  EXPECT_EQ(run(3), 2u);  // third strike lands
  EXPECT_EQ(run(1), 1u);  // single strike lost with the request
}

TEST(FecEdge, ParityWireSizeAccounted) {
  LinkFrame f;
  f.type = FrameType::kParity;
  ParityBlock block;
  block.first_seq = 1;
  block.headers.resize(4);
  block.sizes = {100, 100, 100, 100};
  block.xor_bytes.assign(100, 0);
  f.control = block;
  const auto size = frame_wire_size(f);
  EXPECT_EQ(size, kLinkFrameBytes + 100 + 4 * 24);
}

TEST(FecEdge, InterleavedWithOtherProtocolsOnSameLink) {
  // One link carrying FEC and Reliable flows simultaneously: separate
  // endpoint instances, no cross-talk.
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 2;
  auto fx = build_chain(sim, opts, sim::Rng{64});
  fx.overlay->settle(3_s);
  auto& c1 = fx.overlay->node(0).connect(1);
  auto& c2 = fx.overlay->node(0).connect(2);
  auto& d1 = fx.overlay->node(1).connect(11);
  auto& d2 = fx.overlay->node(1).connect(12);
  client::MeasuringSink s1{d1}, s2{d2};
  ServiceSpec fec;
  fec.link_protocol = LinkProtocol::kFec;
  ServiceSpec rel;
  rel.link_protocol = LinkProtocol::kReliable;
  for (int i = 0; i < 20; ++i) {
    c1.send(Destination::unicast(1, 11), make_payload(100), fec);
    c2.send(Destination::unicast(1, 12), make_payload(100), rel);
  }
  sim.run_for(1_s);
  EXPECT_EQ(s1.received(), 20u);
  EXPECT_EQ(s2.received(), 20u);
  EXPECT_NE(fx.overlay->node(0).find_endpoint(0, LinkProtocol::kFec), nullptr);
  EXPECT_NE(fx.overlay->node(0).find_endpoint(0, LinkProtocol::kReliable), nullptr);
}

TEST(ItReliableEdge, InterleavedFlowsBothComplete) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.1, 65};
  LinkProtocolConfig cfg;
  cfg.it_egress_msgs_per_sec = 2000;
  auto a = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_a(), cfg);
  auto b = make_link_endpoint(LinkProtocol::kITReliable, pair.ctx_b(), cfg);
  pair.attach(a.get(), b.get());
  for (int i = 1; i <= 50; ++i) {
    sim.schedule(Duration::milliseconds(i * 3), [&, i]() {
      a->send(make_msg(static_cast<std::uint64_t>(i), sim.now(), 0));  // flow A
      a->send(make_msg(static_cast<std::uint64_t>(i), sim.now(), 1));  // flow B
    });
  }
  sim.run_for(30_s);
  int fa = 0, fb = 0;
  for (const auto& m : pair.ctx_b().delivered) {
    (m.hdr.origin == 0 ? fa : fb)++;
  }
  EXPECT_EQ(fa, 50);
  EXPECT_EQ(fb, 50);
}

TEST(ItPriorityEdge, PriorityZeroStillFlowsWhenUncontended) {
  Simulator sim;
  FakeLinkPair pair{sim, 5_ms, 0.0, 66};
  auto a = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_a(), {});
  auto b = make_link_endpoint(LinkProtocol::kITPriority, pair.ctx_b(), {});
  pair.attach(a.get(), b.get());
  Message m = make_msg(1, sim.now());
  m.hdr.priority = 0;
  EXPECT_TRUE(a->send(std::move(m)));
  sim.run_for(1_s);
  EXPECT_EQ(pair.ctx_b().delivered.size(), 1u);
}

}  // namespace
}  // namespace son::overlay
