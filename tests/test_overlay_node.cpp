// Integration tests: whole overlay networks over a simulated underlay.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "net/failures.hpp"
#include "overlay/network.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

// ---- Chain fixture ------------------------------------------------------------

TEST(NodeChain, HelloProtocolMeasuresRtt) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 3;
  opts.hop_latency = 10_ms;
  auto fx = build_chain(sim, opts, sim::Rng{1});
  fx.overlay->settle(3_s);
  const auto h = fx.overlay->node(0).link_health(fx.hop_overlay_links[0]);
  EXPECT_TRUE(h.up);
  // RTT = 2 * (10ms prop + small overheads).
  EXPECT_NEAR(h.srtt.to_millis_f(), 20.0, 2.0);
  EXPECT_LT(h.loss_estimate, 0.01);
}

TEST(NodeChain, UnicastLinkStateDelivery) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 4;
  auto fx = build_chain(sim, opts, sim::Rng{2});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(3).connect(200);
  client::MeasuringSink sink{dst};

  ServiceSpec spec;  // link-state + best effort
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(src.send(Destination::unicast(3, 200), make_payload(500), spec));
  }
  sim.run_for(1_s);
  EXPECT_EQ(sink.received(), 10u);
  // Link-state routing prefers the 3-hop chain (30ms) over... the direct
  // link (also 30ms but one hop, lower node-traversal cost). Either way
  // latency is ~30ms.
  EXPECT_NEAR(sink.latencies_ms().mean(), 30.0, 3.0);
}

TEST(NodeChain, SourceRoutedMaskFollowsExactLinks) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 5;
  auto fx = build_chain(sim, opts, sim::Rng{3});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(4).connect(200);
  client::MeasuringSink sink{dst};

  // Force the hop-by-hop chain.
  ServiceSpec chain_spec;
  chain_spec.scheme = RouteScheme::kDissemination;
  chain_spec.custom_mask = fx.chain_mask();
  src.send(Destination::unicast(4, 200), make_payload(100), chain_spec);
  sim.run_for(1_s);
  ASSERT_EQ(sink.received(), 1u);
  const double chain_lat = sink.latencies_ms().max();

  // Force the direct link: same fiber, but one overlay hop.
  ServiceSpec direct_spec;
  direct_spec.scheme = RouteScheme::kDissemination;
  direct_spec.custom_mask = fx.direct_mask();
  src.send(Destination::unicast(4, 200), make_payload(100), direct_spec);
  sim.run_for(1_s);
  ASSERT_EQ(sink.received(), 2u);
  // Chain pays 3 extra node traversals but the same propagation: the two
  // latencies differ by well under a millisecond.
  EXPECT_NEAR(chain_lat, sink.latencies_ms().max(), 1.0);
  EXPECT_NEAR(chain_lat, 40.0, 2.0);
}

TEST(NodeChain, ReliableHopByHopRecoversAllUnderLoss) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 6;
  auto fx = build_chain(sim, opts, sim::Rng{4});
  // 2% loss on every hop, both directions.
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.02));
    fx.internet->link_dir(link, b).set_loss_model(net::make_bernoulli(0.02));
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(5).connect(200);
  client::MeasuringSink sink{dst};

  ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = LinkProtocol::kReliable;
  spec.ordered = true;

  client::CbrSender sender{sim, src,
                           {Destination::unicast(5, 200), spec, 500, 800,
                            sim.now(), sim.now() + 10_s}};
  sim.run_for(15_s);
  EXPECT_EQ(sink.received(), sender.sent());
  EXPECT_GT(sender.sent(), 4000u);
}

TEST(NodeChain, MulticastReachesAllJoinedClients) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 5;
  auto fx = build_chain(sim, opts, sim::Rng{5});
  fx.overlay->settle(3_s);

  constexpr GroupId kGroup = 777;
  auto& c1 = fx.overlay->node(2).connect(10);
  auto& c2 = fx.overlay->node(4).connect(10);
  auto& c3 = fx.overlay->node(3).connect(10);  // NOT joined
  c1.join(kGroup);
  c2.join(kGroup);
  client::MeasuringSink s1{c1}, s2{c2}, s3{c3};
  sim.run_for(3_s);  // let group state flood

  auto& src = fx.overlay->node(0).connect(99);
  ServiceSpec spec;
  for (int i = 0; i < 5; ++i) src.send(Destination::multicast(kGroup), make_payload(200), spec);
  sim.run_for(1_s);
  EXPECT_EQ(s1.received(), 5u);
  EXPECT_EQ(s2.received(), 5u);
  EXPECT_EQ(s3.received(), 0u);
}

TEST(NodeChain, SenderCanAlsoBeGroupMember) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 3;
  auto fx = build_chain(sim, opts, sim::Rng{6});
  fx.overlay->settle(3_s);
  constexpr GroupId kGroup = 5;
  auto& a = fx.overlay->node(0).connect(10);
  auto& b = fx.overlay->node(2).connect(10);
  a.join(kGroup);
  b.join(kGroup);
  client::MeasuringSink sa{a}, sb{b};
  sim.run_for(3_s);
  // "Only receivers need to join the multicast group (any client can send to
  // the group)" — and a joined sender's own node delivers locally too.
  a.send(Destination::multicast(kGroup), make_payload(10), ServiceSpec{});
  sim.run_for(1_s);
  EXPECT_EQ(sb.received(), 1u);
  EXPECT_EQ(sa.received(), 1u);  // local delivery to the joined client
}

TEST(NodeChain, AnycastDeliversToNearestMemberOnly) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 5;
  auto fx = build_chain(sim, opts, sim::Rng{7});
  fx.overlay->settle(3_s);
  constexpr GroupId kGroup = 9;
  auto& near = fx.overlay->node(1).connect(10);
  auto& far = fx.overlay->node(4).connect(10);
  near.join(kGroup);
  far.join(kGroup);
  client::MeasuringSink sn{near}, sf{far};
  sim.run_for(3_s);

  auto& src = fx.overlay->node(0).connect(99);
  for (int i = 0; i < 4; ++i) {
    src.send(Destination::anycast(kGroup), make_payload(50), ServiceSpec{});
  }
  sim.run_for(1_s);
  EXPECT_EQ(sn.received(), 4u);
  EXPECT_EQ(sf.received(), 0u);
}

TEST(NodeChain, OrderedDeliveryViaReorderBuffer) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 4;
  auto fx = build_chain(sim, opts, sim::Rng{8});
  for (const auto link : fx.hop_links) {
    const auto [a, b] = fx.internet->link_endpoints(link);
    fx.internet->link_dir(link, a).set_loss_model(net::make_bernoulli(0.05));
  }
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(3).connect(200);
  std::vector<std::uint64_t> seqs;
  dst.set_handler([&](const Message& m, Duration) { seqs.push_back(m.hdr.flow_seq); });

  ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  spec.link_protocol = LinkProtocol::kReliable;
  spec.ordered = true;
  client::CbrSender sender{sim, src,
                           {Destination::unicast(3, 200), spec, 1000, 300,
                            sim.now(), sim.now() + 5_s}};
  sim.run_for(10_s);
  ASSERT_EQ(seqs.size(), sender.sent());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
}

// ---- Dual-ISP US map ----------------------------------------------------------

struct UsFixture {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{400}};
  topo::BackboneMap map = topo::continental_us();
  topo::BuiltUnderlay underlay;
  std::unique_ptr<OverlayNetwork> overlay;

  explicit UsFixture(NodeConfig cfg = {}) {
    topo::DualIspOptions opts;
    underlay = topo::build_dual_isp(inet, map, opts);
    overlay = std::make_unique<OverlayNetwork>(sim, inet, map, underlay, cfg, sim::Rng{401});
  }
};

TEST(UsOverlay, AllPairsReachableAfterSettle) {
  UsFixture f;
  f.overlay->settle(3_s);
  // Spot-check a few pairs across the continent.
  const std::vector<std::pair<NodeId, NodeId>> pairs{{0, 9}, {3, 11}, {2, 10}};
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<client::MeasuringSink>> sinks;
  for (const auto& [a, b] : pairs) {
    auto& dst = f.overlay->node(b).connect(50);
    sinks.emplace(std::make_pair(a, b), std::make_unique<client::MeasuringSink>(dst));
    auto& src = f.overlay->node(a).connect(49);
    src.send(Destination::unicast(b, 50), make_payload(100), ServiceSpec{});
  }
  f.sim.run_for(1_s);
  for (const auto& [key, sink] : sinks) {
    EXPECT_EQ(sink->received(), 1u) << key.first << "->" << key.second;
  }
}

TEST(UsOverlay, LatencyIsGeographic) {
  UsFixture f;
  f.overlay->settle(3_s);
  auto& src = f.overlay->node(0).connect(49);  // NYC
  auto& dst = f.overlay->node(10).connect(50);  // SFO
  client::MeasuringSink sink{dst};
  src.send(Destination::unicast(10, 50), make_payload(100), ServiceSpec{});
  f.sim.run_for(1_s);
  ASSERT_EQ(sink.received(), 1u);
  // NYC->SFO overlay path: ~26-35 ms one way (multi-hop, inflated fiber).
  EXPECT_GT(sink.latencies_ms().max(), 20.0);
  EXPECT_LT(sink.latencies_ms().max(), 40.0);
}

TEST(UsOverlay, IspChannelFailoverKeepsLinkUp) {
  // Cut the NYC-WDC fiber of ISP A only: the overlay link must stay up by
  // failing over to the ISP B channel, with no overlay-level reroute.
  UsFixture f;
  f.overlay->settle(3_s);
  const auto edge = f.overlay->designed_topology().find_edge(0, 1);
  ASSERT_NE(edge, topo::kNoEdge);
  const auto before = f.overlay->node(0).stats().link_failovers;

  f.inet.set_link_up(f.underlay.links_a[edge], false);
  f.sim.run_for(2_s);

  const auto h = f.overlay->node(0).link_health(static_cast<LinkBit>(edge));
  EXPECT_TRUE(h.up);
  EXPECT_EQ(h.active_channel, 1);  // ISP B
  EXPECT_GT(f.overlay->node(0).stats().link_failovers, before);
}

TEST(UsOverlay, SubSecondRecoveryAfterBothIspsCut) {
  // Cut NYC-WDC fiber in BOTH ISPs: the overlay link goes down and traffic
  // NYC->WDC must reroute at the overlay level within well under a second,
  // while native IP convergence would take 40 s.
  NodeConfig cfg;
  UsFixture f{cfg};
  f.overlay->settle(3_s);

  auto& src = f.overlay->node(0).connect(49);   // NYC
  auto& dst = f.overlay->node(1).connect(50);   // WDC
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  client::CbrSender sender{f.sim, src,
                           {Destination::unicast(1, 50), spec, 1000, 400,
                            f.sim.now(), f.sim.now() + 10_s}};

  const auto edge = f.overlay->designed_topology().find_edge(0, 1);
  const TimePoint cut_at = f.sim.now() + 2_s;
  f.sim.schedule_at(cut_at, [&]() {
    f.inet.set_link_up(f.underlay.links_a[edge], false);
    f.inet.set_link_up(f.underlay.links_b[edge], false);
  });
  f.sim.run_for(12_s);

  // Find the largest delivery gap after the cut.
  std::vector<double> arrivals;  // via latency + seq reconstruction is
  // complex; instead measure delivery count: with 1000 pps for 10 s minus a
  // sub-second outage, ≥ ~9.3k of 10k messages must arrive.
  EXPECT_GT(sender.sent(), 9900u);
  EXPECT_GT(sink.delivery_ratio(sender.sent()), 0.93);
  // And the overlay must now route NYC->WDC via a detour (cost > direct).
  EXPECT_EQ(f.overlay->node(0).router().next_hop(1) == static_cast<LinkBit>(edge), false);
}

TEST(UsOverlay, CompromisedNodeBlackholesLinkStateTraffic) {
  UsFixture f;
  f.overlay->settle(3_s);
  // Route NYC (0) -> ATL (2) goes via WDC (1). Compromise WDC.
  f.overlay->node(1).set_compromise(CompromiseBehavior::blackhole());

  auto& src = f.overlay->node(0).connect(49);
  auto& dst = f.overlay->node(2).connect(50);
  client::MeasuringSink sink{dst};
  for (int i = 0; i < 20; ++i) {
    src.send(Destination::unicast(2, 50), make_payload(100), ServiceSpec{});
  }
  f.sim.run_for(1_s);
  // Link-state routing trusts the (stealthy) compromised node: traffic dies
  // if and only if WDC is on the chosen path. Verify consistency.
  const LinkBit nh = f.overlay->node(0).router().next_hop(2);
  const auto& g = f.overlay->designed_topology();
  const bool via_wdc = g.other_end(nh, 0) == 1;
  if (via_wdc) {
    EXPECT_EQ(sink.received(), 0u);
    EXPECT_EQ(f.overlay->node(1).stats().compromised_dropped, 20u);
  } else {
    EXPECT_EQ(sink.received(), 20u);
  }
}

TEST(UsOverlay, DisjointPathsSurviveOneCompromise) {
  UsFixture f;
  f.overlay->settle(3_s);
  f.overlay->node(1).set_compromise(CompromiseBehavior::blackhole());  // WDC

  auto& src = f.overlay->node(0).connect(49);  // NYC
  auto& dst = f.overlay->node(2).connect(50);  // ATL
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.scheme = RouteScheme::kDisjointPaths;
  spec.num_paths = 2;
  for (int i = 0; i < 20; ++i) src.send(Destination::unicast(2, 50), make_payload(100), spec);
  f.sim.run_for(1_s);
  EXPECT_EQ(sink.received(), 20u);  // the second path avoids WDC
  EXPECT_EQ(sink.duplicates(), 0u);  // node-level dedup upstream of client
}

TEST(UsOverlay, FloodingSurvivesManyCompromises) {
  UsFixture f;
  f.overlay->settle(3_s);
  // Compromise 3 nodes (WDC, DEN, SEA), leaving a correct path NYC->LAX
  // through the south: NYC-CHI-DFW-PHX-LAX.
  for (const NodeId n : {1, 7, 11}) {
    f.overlay->node(n).set_compromise(CompromiseBehavior::blackhole());
  }
  auto& src = f.overlay->node(0).connect(49);   // NYC
  auto& dst = f.overlay->node(9).connect(50);   // LAX
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.scheme = RouteScheme::kFlooding;
  for (int i = 0; i < 10; ++i) src.send(Destination::unicast(9, 50), make_payload(100), spec);
  f.sim.run_for(1_s);
  EXPECT_EQ(sink.received(), 10u);
  EXPECT_EQ(sink.duplicates(), 0u);
}

TEST(UsOverlay, FloodingDeliversExactlyOncePerMessage) {
  UsFixture f;
  f.overlay->settle(3_s);
  auto& src = f.overlay->node(5).connect(49);
  auto& dst = f.overlay->node(11).connect(50);
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.scheme = RouteScheme::kFlooding;
  for (int i = 0; i < 50; ++i) src.send(Destination::unicast(11, 50), make_payload(100), spec);
  f.sim.run_for(1_s);
  EXPECT_EQ(sink.received(), 50u);
  EXPECT_EQ(sink.duplicates(), 0u);
  // The node-level dedup absorbed the redundant copies.
  EXPECT_GT(f.overlay->node(11).stats().dedup_dropped, 0u);
}

}  // namespace
}  // namespace son::overlay
