// FlowEngine: SoA flow tables + single bucket-wheel timer per edge site.
//
// The contracts pinned here:
//   1. Stop boundary — CbrSender/PoissonSender/FlowEngine all refuse to send
//      at or after `stop` (a tick landing exactly on the boundary is dead).
//   2. Golden equivalence — a FlowEngine in legacy_identity mode is
//      BIT-IDENTICAL to the same population of per-object senders: same send
//      counts, same node counters, same delivery hash over
//      (origin_id, flow_seq, latency).
//   3. Zero-allocation ticking — once warm, driving flows through the wheel
//      performs no heap allocations (sim::alloc_count delta == 0).
#include <gtest/gtest.h>

#include "client/flow_engine.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "sim/alloc_probe.hpp"

namespace son::client {
namespace {

using namespace son::sim::literals;
using overlay::Destination;
using overlay::ServiceSpec;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

// ---- LoadCurve --------------------------------------------------------------

TEST(LoadCurve, FromNameCoversTheCliVocabulary) {
  ASSERT_TRUE(LoadCurve::from_name("const").has_value());
  ASSERT_TRUE(LoadCurve::from_name("diurnal").has_value());
  ASSERT_TRUE(LoadCurve::from_name("flash").has_value());
  EXPECT_EQ(LoadCurve::from_name("const")->kind, LoadCurve::Kind::kConstant);
  EXPECT_EQ(LoadCurve::from_name("diurnal")->kind, LoadCurve::Kind::kDiurnal);
  EXPECT_EQ(LoadCurve::from_name("flash")->kind, LoadCurve::Kind::kFlashCrowd);
  EXPECT_FALSE(LoadCurve::from_name("sawtooth").has_value());
  EXPECT_FALSE(LoadCurve::from_name("").has_value());
}

TEST(LoadCurve, ShapesMatchTheirDefinitions) {
  const TimePoint t0 = TimePoint::from_ns(5'000'000'000);
  LoadCurve constant;
  EXPECT_DOUBLE_EQ(constant.scale_at(t0 + 37_ms, t0), 1.0);

  LoadCurve diurnal = *LoadCurve::from_name("diurnal");
  diurnal.period = Duration::seconds(40);
  diurnal.amplitude = 0.5;
  EXPECT_DOUBLE_EQ(diurnal.scale_at(t0, t0), 1.0);              // sin(0)
  EXPECT_NEAR(diurnal.scale_at(t0 + 10_s, t0), 1.5, 1e-9);      // peak
  EXPECT_NEAR(diurnal.scale_at(t0 + 30_s, t0), 0.5, 1e-9);      // trough
  EXPECT_NEAR(diurnal.scale_at(t0 + 40_s, t0), 1.0, 1e-9);      // full period

  LoadCurve flash = *LoadCurve::from_name("flash");
  flash.spike_after = Duration::seconds(1);
  flash.spike_width = Duration::seconds(2);
  flash.spike_factor = 10.0;
  EXPECT_DOUBLE_EQ(flash.scale_at(t0 + 999_ms, t0), 1.0);       // before
  EXPECT_DOUBLE_EQ(flash.scale_at(t0 + 1_s, t0), 10.0);         // spike start
  EXPECT_DOUBLE_EQ(flash.scale_at(t0 + 2999_ms, t0), 10.0);     // inside
  EXPECT_DOUBLE_EQ(flash.scale_at(t0 + 3_s, t0), 1.0);          // at the end
}

// ---- Stop-boundary audit of the per-object senders --------------------------

struct SmallNet {
  Simulator sim;
  overlay::GraphFixture fx;
  SmallNet() {
    overlay::GraphOptions gopts;
    fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(6), gopts, sim::Rng{60});
    fx.overlay->settle(3_s);
  }
};

TEST(TrafficStopBoundary, CbrSendsExactlyFloorTicksBeforeStop) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  auto& dst = f.fx.overlay->node(3).connect(8);
  MeasuringSink sink{dst};
  const TimePoint t0 = f.sim.now();
  CbrSender::Options o;
  o.dest = Destination::unicast(3, 8);
  o.rate_pps = 1000;  // interval exactly 1 ms
  o.start = t0;
  o.stop = t0 + 5_ms;  // ticks at t0 + {0..4} ms send; the tick AT stop must not
  CbrSender cbr{f.sim, src, o};
  f.sim.run_for(1_s);
  EXPECT_EQ(cbr.sent(), 5u);
  EXPECT_EQ(cbr.blocked(), 0u);
  EXPECT_EQ(sink.received(), 5u);
}

TEST(TrafficStopBoundary, StopEqualToStartSendsNothing) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  const TimePoint t0 = f.sim.now();
  CbrSender::Options co;
  co.dest = Destination::unicast(3, 8);
  co.start = t0 + 1_ms;
  co.stop = t0 + 1_ms;
  CbrSender cbr{f.sim, src, co};
  PoissonSender::Options po;
  po.dest = Destination::unicast(3, 8);
  po.start = t0 + 2_ms;
  po.stop = t0 + 2_ms;
  PoissonSender poi{f.sim, src, po, sim::Rng{7}};
  f.sim.run_for(100_ms);
  EXPECT_EQ(cbr.sent(), 0u);
  EXPECT_EQ(poi.sent(), 0u);
}

TEST(TrafficStopBoundary, PoissonNeverSendsAtOrAfterStop) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  auto& dst = f.fx.overlay->node(3).connect(8);
  MeasuringSink sink{dst};
  const TimePoint t0 = f.sim.now();
  const TimePoint stop = t0 + 50_ms;
  TimePoint last_send = TimePoint::zero();
  PoissonSender::Options o;
  o.dest = Destination::unicast(3, 8);
  o.rate_pps = 2000;
  o.start = t0;
  o.stop = stop;
  PoissonSender poi{f.sim, src, o, sim::Rng{99}};
  f.sim.run_for(1_s);
  EXPECT_GT(poi.sent(), 0u);
  // Every delivery's origin timestamp must predate the stop boundary.
  EXPECT_EQ(sink.received(), poi.sent());
  EXPECT_EQ(sink.highest_seq(), poi.sent());
  (void)last_send;
}

TEST(TrafficStopBoundary, FlowEngineMatchesTheCbrBoundary) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  auto& dst = f.fx.overlay->node(3).connect(8);
  MeasuringSink sink{dst};
  const TimePoint t0 = f.sim.now();
  FlowEngineOptions eo;
  FlowClass c;
  c.rate_pps = 1000;
  eo.classes = {c};
  eo.dests = {Destination::unicast(3, 8)};
  eo.start = t0;
  eo.stop = t0 + 1_s;
  eo.legacy_identity = true;
  FlowEngine eng{f.sim, src, eo, sim::Rng{1}};
  eng.add_flow(0, 0, t0, t0 + 5_ms, sim::Rng{2});       // same window as the CBR pin
  eng.add_flow(0, 0, t0 + 7_ms, t0 + 7_ms, sim::Rng{3});  // stop == first: nothing
  eng.start();
  f.sim.run_for(1_s);
  EXPECT_EQ(eng.totals().sent, 5u);
  EXPECT_EQ(sink.received(), 5u);
  EXPECT_EQ(eng.totals().retired, 2u);
  EXPECT_EQ(eng.active_flows(), 0u);
}

// ---- Flow-table mechanics ---------------------------------------------------

TEST(FlowEngine, PacketBudgetRetiresFlows) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  const TimePoint t0 = f.sim.now();
  FlowEngineOptions eo;
  FlowClass c;
  c.rate_pps = 1000;
  c.packet_budget = 7;
  eo.classes = {c};
  eo.dests = {Destination::unicast(2, 5)};
  eo.start = t0;
  eo.stop = t0 + 10_s;
  FlowEngine eng{f.sim, src, eo, sim::Rng{1}};
  eng.add_flow(0, 0, t0, t0 + 10_s, sim::Rng{2});
  eng.add_flow(0, 0, t0 + 500_us, t0 + 10_s, sim::Rng{3});
  eng.start();
  f.sim.run_for(5_s);
  EXPECT_EQ(eng.totals().sent, 14u);  // 7 packets per flow, then retirement
  EXPECT_EQ(eng.totals().retired, 2u);
  EXPECT_EQ(eng.active_flows(), 0u);
  EXPECT_EQ(eng.peak_active_flows(), 2u);
}

TEST(FlowEngine, SlowFlowsCrossTheWheelHorizonCorrectly) {
  // Inter-packet gap (200 ms) >> wheel horizon (16 buckets * 1 ms): every
  // re-arm lands in the overflow list and must still fire exactly on time.
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  auto& dst = f.fx.overlay->node(3).connect(8);
  MeasuringSink sink{dst};
  const TimePoint t0 = f.sim.now();
  FlowEngineOptions eo;
  FlowClass c;
  c.rate_pps = 5;  // one packet per 200 ms
  eo.classes = {c};
  eo.dests = {Destination::unicast(3, 8)};
  eo.start = t0;
  eo.stop = t0 + 10_s;
  eo.bucket_width = 1_ms;
  eo.buckets = 16;
  eo.legacy_identity = true;
  FlowEngine eng{f.sim, src, eo, sim::Rng{1}};
  eng.add_flow(0, 0, t0, t0 + 1001_ms, sim::Rng{2});
  eng.start();
  f.sim.run_for(3_s);
  EXPECT_EQ(eng.totals().sent, 6u);  // t0 + {0, 200, 400, 600, 800, 1000} ms
  EXPECT_EQ(sink.received(), 6u);
}

TEST(FlowEngine, CurveDrivenPopulationReachesTheTargetAndChurns) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  const TimePoint t0 = f.sim.now();
  FlowEngineOptions eo;
  FlowClass c;
  c.rate_pps = 100;
  eo.classes = {c};
  eo.dests = {Destination::unicast(2, 5)};
  eo.flows = 500;
  eo.mean_lifetime = 200_ms;
  eo.start = t0;
  eo.stop = t0 + 2_s;
  FlowEngine eng{f.sim, src, eo, sim::Rng{42}};
  eng.start();
  f.sim.run_for(3_s);
  // Initial batch + churn arrivals; exponential lifetimes retire flows.
  EXPECT_GE(eng.totals().activated, 500u);
  EXPECT_GT(eng.totals().retired, 500u);
  EXPECT_GT(eng.totals().sent, 1000u);
  EXPECT_GE(eng.peak_active_flows(), 400u);
  EXPECT_EQ(eng.active_flows() + eng.totals().retired, eng.totals().activated);
  EXPECT_GT(eng.memory_bytes(), 0u);
}

// ---- Tagged flyweight identity ----------------------------------------------

TEST(FlowEngine, TaggedFlowsGetDistinctIdentitiesThroughOneEndpoint) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  auto& dst = f.fx.overlay->node(3).connect(8);
  MeasuringSink sink{dst};
  const TimePoint t0 = f.sim.now();
  FlowEngineOptions eo;
  FlowClass c;
  c.rate_pps = 1000;
  c.packet_budget = 10;
  eo.classes = {c};
  eo.dests = {Destination::unicast(3, 8)};
  eo.start = t0;
  eo.stop = t0 + 10_s;
  // Default (flyweight) identity: same endpoint, same destination — but each
  // flow carries its own tag and sequence numbers.
  FlowEngine eng{f.sim, src, eo, sim::Rng{1}};
  eng.add_flow(0, 0, t0, t0 + 10_s, sim::Rng{2});
  eng.add_flow(0, 0, t0, t0 + 10_s, sim::Rng{3});
  eng.add_flow(0, 0, t0, t0 + 10_s, sim::Rng{4});
  eng.start();
  f.sim.run_for(2_s);
  EXPECT_EQ(eng.totals().sent, 30u);
  EXPECT_EQ(sink.received(), 30u);
  // Three distinct flow keys at the terminating session, each a clean
  // gap-free 1..10 sequence — per-flow identity survived the shared endpoint.
  const auto& flows = f.fx.overlay->node(3).session_flows();
  ASSERT_EQ(flows.size(), 3u);
  for (const auto& [key, fs] : flows) {
    EXPECT_EQ(fs.delivered, 10u);
    EXPECT_EQ(fs.highest_seq, 10u);
    EXPECT_EQ(fs.gaps, 0u);
  }
}

TEST(FlowEngine, SessionFlowAccountingKnobDropsThePerFlowMap) {
  Simulator sim;
  overlay::GraphOptions gopts;
  gopts.node.session_flow_accounting = false;
  auto fx = overlay::build_graph_fixture(sim, overlay::circulant_topology(6), gopts,
                                         sim::Rng{60});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(7);
  auto& dst = fx.overlay->node(3).connect(8);
  MeasuringSink sink{dst};
  for (int i = 0; i < 10; ++i) {
    src.send(Destination::unicast(3, 8), overlay::make_payload(100), ServiceSpec{});
  }
  sim.run_for(1_s);
  // Delivery and handlers are unaffected; only the per-flow map is gone.
  EXPECT_EQ(sink.received(), 10u);
  EXPECT_EQ(fx.overlay->node(3).stats().delivered_local, 10u);
  EXPECT_TRUE(fx.overlay->node(3).session_flows().empty());
}

// ---- Golden equivalence: FlowEngine == per-object senders -------------------

struct GoldenResult {
  std::uint64_t sent = 0;
  std::uint64_t blocked = 0;
  std::uint64_t originated = 0;
  std::uint64_t delivered_local = 0;
  std::uint64_t received = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t highest_seq = 0;
  std::uint64_t hash = 1469598103934665603ULL;
};

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
}

struct FlowSpec {
  double rate_pps;
  bool poisson;
  Duration offset;
};

// Mixed CBR/Poisson population. Offsets and rates are chosen so no two flows
// (or protocol timers) ever tick at the same nanosecond — cross-object
// ordering at shared instants is exercised separately below.
const FlowSpec kGoldenFlows[] = {
    {941, false, Duration::microseconds(137)}, {613, false, Duration::microseconds(211)},
    {377, false, Duration::microseconds(307)}, {200, true, Duration::microseconds(401)},
    {150, true, Duration::microseconds(503)},
};

template <typename MakeTraffic>
GoldenResult run_golden(MakeTraffic make_traffic) {
  SmallNet f;
  auto& src = f.fx.overlay->node(0).connect(7);
  auto& dst = f.fx.overlay->node(3).connect(8);
  MeasuringSink sink{dst};
  GoldenResult r;
  sink.on_message([&](const overlay::Message& m, Duration latency) {
    mix(r.hash, m.hdr.origin_id);
    mix(r.hash, m.hdr.flow_seq);
    mix(r.hash, static_cast<std::uint64_t>(latency.ns()));
  });
  const TimePoint t0 = f.sim.now();
  const TimePoint stop = t0 + 400_ms;
  auto [sent, blocked] = make_traffic(f.sim, src, t0, stop);
  r.sent = sent;
  r.blocked = blocked;
  r.originated = f.fx.overlay->node(0).stats().originated;
  r.delivered_local = f.fx.overlay->node(3).stats().delivered_local;
  r.received = sink.received();
  r.duplicates = sink.duplicates();
  r.highest_seq = sink.highest_seq();
  return r;
}

TEST(FlowEngineGolden, EquivalentToPerObjectSendersBitForBit) {
  // Run A: one heap object + one timer per flow (the legacy model).
  const GoldenResult a = run_golden([](Simulator& sim, overlay::ClientEndpoint& src,
                                       TimePoint t0, TimePoint stop) {
    std::vector<std::unique_ptr<CbrSender>> cbrs;
    std::vector<std::unique_ptr<PoissonSender>> pois;
    const sim::Rng base{777};
    std::uint64_t label = 0;
    for (const FlowSpec& fs : kGoldenFlows) {
      if (fs.poisson) {
        PoissonSender::Options o;
        o.dest = Destination::unicast(3, 8);
        o.rate_pps = fs.rate_pps;
        o.payload_bytes = 300;
        o.start = t0 + fs.offset;
        o.stop = stop;
        pois.push_back(std::make_unique<PoissonSender>(sim, src, o, base.fork(label)));
      } else {
        CbrSender::Options o;
        o.dest = Destination::unicast(3, 8);
        o.rate_pps = fs.rate_pps;
        o.payload_bytes = 300;
        o.start = t0 + fs.offset;
        o.stop = stop;
        cbrs.push_back(std::make_unique<CbrSender>(sim, src, o));
      }
      ++label;
    }
    sim.run_until(stop + 2_s);
    std::uint64_t sent = 0, blocked = 0;
    for (const auto& s : cbrs) sent += s->sent(), blocked += s->blocked();
    for (const auto& s : pois) sent += s->sent(), blocked += s->blocked();
    return std::pair<std::uint64_t, std::uint64_t>{sent, blocked};
  });

  // Run B: the same population as rows in ONE engine's flow tables.
  const GoldenResult b = run_golden([](Simulator& sim, overlay::ClientEndpoint& src,
                                       TimePoint t0, TimePoint stop) {
    FlowEngineOptions eo;
    for (const FlowSpec& fs : kGoldenFlows) {
      FlowClass c;
      c.rate_pps = fs.rate_pps;
      c.poisson = fs.poisson;
      c.payload_bytes = 300;
      eo.classes.push_back(c);
    }
    eo.dests = {Destination::unicast(3, 8)};
    eo.start = t0;
    eo.stop = stop;
    eo.legacy_identity = true;  // endpoint-held flow identity, like the objects
    FlowEngine eng{sim, src, eo, sim::Rng{1}};
    const sim::Rng base{777};
    std::uint64_t label = 0;
    for (std::size_t i = 0; i < std::size(kGoldenFlows); ++i) {
      eng.add_flow(i, 0, t0 + kGoldenFlows[i].offset, stop, base.fork(label));
      ++label;
    }
    eng.start();
    sim.run_until(stop + 2_s);
    return std::pair<std::uint64_t, std::uint64_t>{eng.totals().sent, eng.totals().blocked};
  });

  EXPECT_GT(a.sent, 500u);  // the scenario generates real traffic
  EXPECT_EQ(b.sent, a.sent);
  EXPECT_EQ(b.blocked, a.blocked);
  EXPECT_EQ(b.originated, a.originated);
  EXPECT_EQ(b.delivered_local, a.delivered_local);
  EXPECT_EQ(b.received, a.received);
  EXPECT_EQ(b.duplicates, a.duplicates);
  EXPECT_EQ(b.highest_seq, a.highest_seq);
  EXPECT_EQ(b.hash, a.hash);
}

TEST(FlowEngineGolden, SharedInstantOrderingMatchesTheEventQueue) {
  // Two CBR flows with the SAME rate and SAME start collide at every tick.
  // The per-object run breaks the tie by event-queue order; the engine must
  // reproduce it with its scheduling-order stamps — the delivery hash covers
  // origin_id allocation order, which exposes any swap.
  const GoldenResult a = run_golden([](Simulator& sim, overlay::ClientEndpoint& src,
                                       TimePoint t0, TimePoint stop) {
    CbrSender::Options o;
    o.dest = Destination::unicast(3, 8);
    o.rate_pps = 500;
    o.payload_bytes = 300;
    o.start = t0 + Duration::microseconds(173);
    o.stop = t0 + 100_ms;
    CbrSender first{sim, src, o};
    CbrSender second{sim, src, o};
    sim.run_until(stop + 1_s);
    return std::pair<std::uint64_t, std::uint64_t>{first.sent() + second.sent(),
                                                   first.blocked() + second.blocked()};
  });
  const GoldenResult b = run_golden([](Simulator& sim, overlay::ClientEndpoint& src,
                                       TimePoint t0, TimePoint stop) {
    FlowEngineOptions eo;
    FlowClass c;
    c.rate_pps = 500;
    c.payload_bytes = 300;
    eo.classes = {c};
    eo.dests = {Destination::unicast(3, 8)};
    eo.start = t0;
    eo.stop = t0 + 100_ms;
    eo.legacy_identity = true;
    FlowEngine eng{sim, src, eo, sim::Rng{1}};
    eng.add_flow(0, 0, t0 + Duration::microseconds(173), t0 + 100_ms, sim::Rng{2});
    eng.add_flow(0, 0, t0 + Duration::microseconds(173), t0 + 100_ms, sim::Rng{3});
    eng.start();
    sim.run_until(stop + 1_s);
    return std::pair<std::uint64_t, std::uint64_t>{eng.totals().sent, eng.totals().blocked};
  });
  EXPECT_EQ(a.sent, 100u);  // 50 ticks each
  EXPECT_EQ(b.sent, a.sent);
  EXPECT_EQ(b.highest_seq, a.highest_seq);
  EXPECT_EQ(b.hash, a.hash);
}

// ---- Zero-allocation steady state -------------------------------------------

bool count_only_hook(void* ctx, std::size_t, const Destination&, TimePoint) {
  ++*static_cast<std::uint64_t*>(ctx);
  return true;
}

TEST(FlowEngineAlloc, SteadyStateTickingDoesNotTouchTheHeap) {
  // A bare, never-started node: no hellos, no floods — the only events in
  // this simulator are the engine's own wheel wake-ups, and the send hook
  // bypasses the (allocating) overlay datapath.
  Simulator sim;
  net::Internet internet{sim, sim::Rng{5}};
  const net::HostId h = internet.add_host("probe");
  overlay::OverlayNode node{sim, internet, h, 0, topo::Graph{1}, {}, overlay::NodeConfig{},
                            sim::Rng{6}};
  auto& src = node.connect(1);

  FlowEngineOptions eo;
  FlowClass cbr;
  cbr.rate_pps = 200;
  FlowClass poi;
  poi.rate_pps = 100;
  poi.poisson = true;
  eo.classes = {cbr, poi};
  eo.dests = {Destination::unicast(0, 2)};
  eo.start = TimePoint::zero();
  eo.stop = TimePoint::from_ns(Duration::seconds(60).ns());
  eo.bucket_width = 1_ms;
  eo.buckets = 64;  // small wheel: many revolutions + overflow redistribution
  eo.capacity_headroom = 4096;  // explicit population: reserve for all 2000 rows
  FlowEngine eng{sim, src, eo, sim::Rng{1}};
  std::uint64_t fired = 0;
  eng.set_send_hook(&count_only_hook, &fired);
  const sim::Rng base{31337};
  for (std::uint64_t i = 0; i < 2000; ++i) {
    eng.add_flow(i % 2, 0, TimePoint::from_ns(static_cast<std::int64_t>(i) * 25'000),
                 eo.stop, base.fork(i));
  }
  eng.start();

  // Warm up well past one wheel revolution so every table, bucket and the
  // event queue's slot pool have seen their high-water marks.
  sim.run_for(5_s);
  const std::uint64_t fired_before = fired;
  const std::uint64_t allocs_before = sim::alloc_count();
  sim.run_for(5_s);
  const std::uint64_t allocs_after = sim::alloc_count();
  EXPECT_GT(fired - fired_before, 500'000u);  // ~300k pps for 5 s of sim time
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state FlowEngine ticking must not allocate";
}

}  // namespace
}  // namespace son::client
