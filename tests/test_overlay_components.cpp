#include <gtest/gtest.h>
#include <cmath>

#include "overlay/dedup.hpp"
#include "overlay/group_state.hpp"
#include "overlay/link_state.hpp"
#include "overlay/message.hpp"
#include "overlay/reorder_buffer.hpp"
#include "overlay/routing.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;

topo::Graph square() {
  // 0-1 (1ms), 1-3 (1ms), 0-2 (3ms), 2-3 (3ms)
  topo::Graph g(4);
  g.add_edge(0, 1, 1);  // bit 0
  g.add_edge(1, 3, 1);  // bit 1
  g.add_edge(0, 2, 3);  // bit 2
  g.add_edge(2, 3, 3);  // bit 3
  return g;
}

// ---- TopologyDb -----------------------------------------------------------

TEST(TopologyDb, AppliesNewerRejectsOlder) {
  TopologyDb db{square()};
  LinkStateAd ad;
  ad.origin = 0;
  ad.seq = 5;
  ad.links = {{0, true, 1.0, 0.0}};
  EXPECT_TRUE(db.apply(ad));
  EXPECT_FALSE(db.apply(ad));  // same seq
  ad.seq = 4;
  EXPECT_FALSE(db.apply(ad));  // older
  ad.seq = 6;
  EXPECT_TRUE(db.apply(ad));
  EXPECT_EQ(db.stored_seq(0), 6u);
}

TEST(TopologyDb, LinkDownIfEitherEndpointSaysDown) {
  TopologyDb db{square()};
  EXPECT_TRUE(db.link_up(0));  // unreported: up
  LinkStateAd ad;
  ad.origin = 0;
  ad.seq = 1;
  ad.links = {{0, false, 1.0, 0.0}};
  db.apply(ad);
  EXPECT_FALSE(db.link_up(0));
  // The other endpoint saying "up" does not resurrect it.
  LinkStateAd ad2;
  ad2.origin = 1;
  ad2.seq = 1;
  ad2.links = {{0, true, 1.0, 0.0}};
  db.apply(ad2);
  EXPECT_FALSE(db.link_up(0));
}

TEST(TopologyDb, CostIncludesLossPenalty) {
  TopologyDb db{square()};
  LinkStateAd ad;
  ad.origin = 0;
  ad.seq = 1;
  ad.links = {{0, true, 10.0, 0.0}};
  db.apply(ad);
  EXPECT_NEAR(db.link_cost(0), 10.0, 1e-9);
  ad.seq = 2;
  ad.links = {{0, true, 10.0, 0.5}};  // 50% loss: + rtt*p/(1-p) = 2*10*1 = 20
  db.apply(ad);
  EXPECT_NEAR(db.link_cost(0), 30.0, 1e-9);
  ad.seq = 3;
  ad.links = {{0, false, 10.0, 0.0}};
  db.apply(ad);
  EXPECT_TRUE(std::isinf(db.link_cost(0)));
}

TEST(TopologyDb, WorseEndpointReportWins) {
  TopologyDb db{square()};
  LinkStateAd a{0, 1, {{0, true, 5.0, 0.0}}};
  LinkStateAd b{1, 1, {{0, true, 9.0, 0.0}}};
  db.apply(a);
  db.apply(b);
  EXPECT_NEAR(db.link_cost(0), 9.0, 1e-9);
}

TEST(TopologyDb, CurrentGraphReflectsCosts) {
  TopologyDb db{square()};
  LinkStateAd ad{0, 1, {{0, true, 50.0, 0.0}}};
  db.apply(ad);
  const auto& g = db.current_graph();
  EXPECT_NEAR(g.edge(0).weight, 50.0, 1e-9);
  EXPECT_NEAR(g.edge(2).weight, 3.0, 1e-9);  // unreported: designed weight
}

// ---- GroupDb ----------------------------------------------------------------

TEST(GroupDb, MembershipFloodingSemantics) {
  GroupDb db{4};
  EXPECT_TRUE(db.members_of(7).empty());
  GroupStateAd ad{2, 1, {7, 9}};
  EXPECT_TRUE(db.apply(ad));
  EXPECT_TRUE(db.is_member(2, 7));
  EXPECT_TRUE(db.is_member(2, 9));
  EXPECT_FALSE(db.is_member(2, 8));
  EXPECT_EQ(db.members_of(7), (std::vector<NodeId>{2}));
  // Leaving: newer ad without the group.
  GroupStateAd ad2{2, 2, {9}};
  EXPECT_TRUE(db.apply(ad2));
  EXPECT_FALSE(db.is_member(2, 7));
}

TEST(GroupDb, MultipleMembersSorted) {
  GroupDb db{4};
  db.apply({3, 1, {5}});
  db.apply({1, 1, {5}});
  db.apply({2, 1, {6}});
  EXPECT_EQ(db.members_of(5), (std::vector<NodeId>{1, 3}));
}

// ---- Router ------------------------------------------------------------------

struct RouterFixture {
  TopologyDb topo{square()};
  GroupDb groups{4};
  Router router{0, topo, groups};
};

TEST(Router, NextHopFollowsShortestPath) {
  RouterFixture f;
  EXPECT_EQ(f.router.next_hop(3), 0);  // 0-1-3 cheaper than 0-2-3
  EXPECT_EQ(f.router.next_hop(1), 0);
  EXPECT_EQ(f.router.next_hop(2), 2);
  EXPECT_EQ(f.router.next_hop(0), kInvalidLinkBit);  // self
}

TEST(Router, NextHopReactsToLinkFailure) {
  RouterFixture f;
  LinkStateAd ad{0, 1, {{0, false, 1.0, 0.0}, {2, true, 3.0, 0.0}}};
  f.topo.apply(ad);
  EXPECT_EQ(f.router.next_hop(3), 2);  // reroute via node 2
  EXPECT_EQ(f.router.next_hop(1), 2);  // even node 1 now via 2-3-1
}

TEST(Router, PathCostTracksTopology) {
  RouterFixture f;
  EXPECT_NEAR(f.router.path_cost_to(3), 2.0, 1e-9);
  LinkStateAd ad{0, 1, {{0, false, 1.0, 0.0}}};
  f.topo.apply(ad);
  EXPECT_NEAR(f.router.path_cost_to(3), 6.0, 1e-9);
}

TEST(Router, AnycastPicksNearestMember) {
  RouterFixture f;
  f.groups.apply({2, 1, {42}});
  f.groups.apply({3, 1, {42}});
  EXPECT_EQ(f.router.anycast_target(42), 3);  // cost 2 vs 3
  f.groups.apply({0, 1, {42}});               // self joins
  EXPECT_EQ(f.router.anycast_target(42), 0);
  EXPECT_EQ(f.router.anycast_target(999), kInvalidNode);
}

TEST(Router, MulticastLinksFollowSourceTree) {
  RouterFixture f;
  f.groups.apply({3, 1, {8}});
  f.groups.apply({2, 1, {8}});
  // Tree from 0: 3 via 0-1-3 (bits 0,1), 2 via 0-2 (bit 2).
  const auto links = f.router.multicast_links(0, 8, kInvalidLinkBit);
  EXPECT_EQ(links, (std::vector<LinkBit>{0, 2}));
  // At node 1 (different router instance) the tree forwards 0->1->3.
  Router r1{1, f.topo, f.groups};
  const auto l1 = r1.multicast_links(0, 8, /*arrived_on=*/0);
  EXPECT_EQ(l1, (std::vector<LinkBit>{1}));
}

TEST(Router, MulticastCacheInvalidatesOnVersionChange) {
  RouterFixture f;
  f.groups.apply({3, 1, {8}});
  EXPECT_EQ(f.router.multicast_links(0, 8, kInvalidLinkBit), (std::vector<LinkBit>{0}));
  f.groups.apply({2, 1, {8}});  // 2 joins
  EXPECT_EQ(f.router.multicast_links(0, 8, kInvalidLinkBit),
            (std::vector<LinkBit>{0, 2}));
  LinkStateAd ad{0, 1, {{0, false, 1.0, 0.0}}};
  f.topo.apply(ad);  // link 0 down: everything via node 2
  EXPECT_EQ(f.router.multicast_links(0, 8, kInvalidLinkBit), (std::vector<LinkBit>{2}));
}

TEST(Router, SourceMaskDisjointPaths) {
  RouterFixture f;
  ServiceSpec spec;
  spec.scheme = RouteScheme::kDisjointPaths;
  spec.num_paths = 2;
  const LinkMask m = f.router.source_mask(spec, 3);
  EXPECT_EQ(m, bit_of(0) | bit_of(1) | bit_of(2) | bit_of(3));  // both paths
}

TEST(Router, SourceMaskFloodingIsAllLinks) {
  RouterFixture f;
  ServiceSpec spec;
  spec.scheme = RouteScheme::kFlooding;
  EXPECT_EQ(f.router.source_mask(spec, 3), LinkMask{0b1111});
  // Flooding ignores believed link state (maximal redundancy).
  LinkStateAd ad{0, 1, {{0, false, 1.0, 0.0}}};
  f.topo.apply(ad);
  EXPECT_EQ(f.router.source_mask(spec, 3), LinkMask{0b1111});
}

TEST(Router, AdjacentMaskLinks) {
  RouterFixture f;
  const LinkMask m = bit_of(0) | bit_of(1) | bit_of(3);
  EXPECT_EQ(f.router.adjacent_mask_links(m, kInvalidLinkBit), (std::vector<LinkBit>{0}));
  Router r3{3, f.topo, f.groups};
  EXPECT_EQ(r3.adjacent_mask_links(m, /*arrived_on=*/1), (std::vector<LinkBit>{3}));
}

// ---- DedupCache -----------------------------------------------------------------

TEST(Dedup, DetectsDuplicates) {
  DedupCache d{100};
  EXPECT_FALSE(d.seen_or_insert(1));
  EXPECT_TRUE(d.seen_or_insert(1));
  EXPECT_FALSE(d.seen_or_insert(2));
}

TEST(Dedup, EvictsOldestBeyondCapacity) {
  DedupCache d{3};
  d.seen_or_insert(1);
  d.seen_or_insert(2);
  d.seen_or_insert(3);
  d.seen_or_insert(4);  // evicts 1
  EXPECT_EQ(d.size(), 3u);
  EXPECT_FALSE(d.seen_or_insert(1));  // forgotten -> reinserted
}

// ---- ReorderBuffer ------------------------------------------------------------

struct ReorderFixture {
  Simulator sim;
  std::vector<std::uint64_t> delivered;
  ReorderBuffer buf{sim, 50_ms, [this](const Message& m) {
                      delivered.push_back(m.hdr.flow_seq);
                    }};

  Message msg(std::uint64_t seq) {
    Message m;
    m.hdr.flow_seq = seq;
    return m;
  }
};

TEST(ReorderBuffer, InOrderPassThrough) {
  ReorderFixture f;
  for (std::uint64_t s = 1; s <= 5; ++s) f.buf.push(f.msg(s));
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(ReorderBuffer, ReordersOutOfOrderArrivals) {
  ReorderFixture f;
  f.buf.push(f.msg(1));
  f.buf.push(f.msg(3));
  f.buf.push(f.msg(4));
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1}));
  f.buf.push(f.msg(2));
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(ReorderBuffer, SkipsGapAfterHoldTimeout) {
  ReorderFixture f;
  f.buf.push(f.msg(1));
  f.buf.push(f.msg(3));
  f.sim.run_for(100_ms);
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(f.buf.stats().skipped_missing, 1u);
}

TEST(ReorderBuffer, LateRecoveredPacketDiscarded) {
  // §IV-A: "If a recovered packet arrives after later packets were already
  // delivered, it is discarded."
  ReorderFixture f;
  f.buf.push(f.msg(1));
  f.buf.push(f.msg(3));
  f.sim.run_for(100_ms);  // gap for 2 abandoned, 3 delivered
  f.buf.push(f.msg(2));   // late recovery
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(f.buf.stats().late_discarded, 1u);
}

TEST(ReorderBuffer, DuplicateHeldMessage) {
  ReorderFixture f;
  f.buf.push(f.msg(2));
  f.buf.push(f.msg(2));
  EXPECT_EQ(f.buf.stats().duplicates, 1u);
  f.buf.push(f.msg(1));
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1, 2}));
}

TEST(ReorderBuffer, MultipleGapsSequentialTimeouts) {
  ReorderFixture f;
  f.buf.push(f.msg(2));
  f.sim.run_for(20_ms);
  f.buf.push(f.msg(5));
  f.sim.run_for(100_ms);
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{2, 5}));
  EXPECT_EQ(f.buf.stats().skipped_missing, 3u);  // 1, 3, 4
}

// ---- Message helpers -----------------------------------------------------------

TEST(Message, AuthBytesChangeWithHeaderAndPayload) {
  Message m;
  m.hdr.origin = 3;
  m.hdr.origin_id = 77;
  m.payload = make_payload(10, 0x11);
  const auto base = auth_bytes(m);

  Message m2 = m;
  m2.hdr.priority = 9;
  EXPECT_NE(auth_bytes(m2), base);

  Message m3 = m;
  m3.hdr.mask = 0b1010;
  EXPECT_NE(auth_bytes(m3), base);

  Message m4 = m;
  m4.payload = make_payload(10, 0x12);
  EXPECT_NE(auth_bytes(m4), base);

  Message m5 = m;
  EXPECT_EQ(auth_bytes(m5), base);
}

TEST(Message, WireSizeAccounting) {
  Message m;
  m.payload = make_payload(1000);
  EXPECT_EQ(wire_size(m, false), kMessageHeaderBytes + 1000);
  EXPECT_EQ(wire_size(m, true), kMessageHeaderBytes + 1000 + kAuthTagBytes);
  Message empty;
  EXPECT_EQ(wire_size(empty, false), kMessageHeaderBytes);
}

TEST(Message, PayloadSharing) {
  const Payload p = make_payload(100, 0x5A);
  Message a;
  a.payload = p;
  Message b = a;  // copy shares the buffer
  EXPECT_EQ(a.payload.get(), b.payload.get());
  EXPECT_EQ(p.use_count(), 3);
}

}  // namespace
}  // namespace son::overlay
