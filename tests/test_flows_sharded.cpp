// Sharded-kernel determinism with FlowEngine workloads at scale.
//
// One engine per partition (12 continental sites), ~8.5k tagged flows each —
// beyond 100k concurrent flows in one trial — driving cross-country unicast
// through the sharded kernel. The contract under test: the per-node delivery
// digests, engine totals and network counters are bit-identical whether the
// kernel runs on 1 worker or 4 (flow workloads must not leak execution
// layout into results; engine RNG comes from sim::component_stream).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "client/flow_engine.hpp"
#include "overlay/sharded.hpp"

namespace son::client {
namespace {

using namespace son::sim::literals;
using overlay::Destination;

constexpr std::size_t kSites = 12;
constexpr std::size_t kFlowsPerSite = 8500;  // 102k concurrent flows total

struct ShardedFlowsResult {
  std::uint64_t activated = 0;
  std::uint64_t sent = 0;
  std::uint64_t blocked = 0;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t digest = 1469598103934665603ULL;
};

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
}

ShardedFlowsResult run_sharded_flows(unsigned workers) {
  overlay::ShardedMapOptions opts;
  opts.workers = workers;
  // 100k tagged flow keys would explode the per-flow session maps — this is
  // exactly the workload the accounting knob exists for.
  opts.node.session_flow_accounting = false;
  const std::uint64_t seed = 0xF10E5;
  auto fx = overlay::build_sharded_map(topo::continental_us(), opts, seed);

  // Per-node digest accumulators: every handler runs on its own partition's
  // worker, so each slot is only written partition-locally.
  std::vector<std::uint64_t> digest(kSites, 1469598103934665603ULL);
  std::vector<std::uint64_t> received(kSites, 0);
  for (std::size_t i = 0; i < kSites; ++i) {
    auto& sink = fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(9);
    sink.set_handler([&digest, &received, &fx, i](const overlay::Message& m, sim::Duration) {
      mix(digest[i], m.hdr.flow_key);
      mix(digest[i], m.hdr.flow_seq);
      mix(digest[i],
          static_cast<std::uint64_t>(fx.node_sim(static_cast<overlay::NodeId>(i)).now().ns()));
      ++received[i];
    });
  }

  fx.settle(3_s);
  const sim::TimePoint t0 = fx.kernel->now();

  std::vector<std::unique_ptr<FlowEngine>> engines;
  for (std::size_t i = 0; i < kSites; ++i) {
    const auto id = static_cast<overlay::NodeId>(i);
    FlowEngineOptions eo;
    FlowClass c;
    c.rate_pps = 1.0;  // one packet per second per flow — population, not rate
    c.payload_bytes = 120;
    eo.classes = {c};
    eo.dests = {Destination::unicast(static_cast<overlay::NodeId>((i + 6) % kSites), 9)};
    eo.flows = kFlowsPerSite;  // static population living until stop
    eo.start = t0 + sim::Duration::microseconds(137 * (static_cast<std::int64_t>(i) + 1));
    eo.stop = t0 + 2_s;
    engines.push_back(std::make_unique<FlowEngine>(
        fx.node_sim(id), fx.overlay->node(id).connect(3), eo,
        sim::component_stream(seed, static_cast<std::uint32_t>(i), overlay::kStreamFlowEngine,
                              i)));
    engines.back()->start();
  }

  fx.kernel->run_until(t0 + 5_s);

  ShardedFlowsResult r;
  for (const auto& e : engines) {
    r.activated += e->totals().activated;
    r.sent += e->totals().sent;
    r.blocked += e->totals().blocked;
    EXPECT_EQ(e->active_flows(), 0u);  // 1 pps flows all retire before +5 s
  }
  r.net_sent = fx.internet->counters().sent;
  r.net_delivered = fx.internet->counters().delivered;
  std::uint64_t folded = 1469598103934665603ULL;
  std::uint64_t total_received = 0;
  for (std::size_t i = 0; i < kSites; ++i) {
    mix(folded, digest[i]);
    total_received += received[i];
  }
  r.digest = folded;
  EXPECT_GT(total_received, 0u);
  return r;
}

TEST(FlowsSharded, HundredThousandFlowsOneWorkerEqualsFour) {
  const ShardedFlowsResult one = run_sharded_flows(1);
  const ShardedFlowsResult four = run_sharded_flows(4);

  // The scenario is real: the full population activates and sends.
  EXPECT_EQ(one.activated, kSites * kFlowsPerSite);
  EXPECT_GT(one.sent, kSites * kFlowsPerSite);  // ≥ 1 packet per flow

  // The contract: flow digests and counters match across worker counts.
  EXPECT_EQ(four.activated, one.activated);
  EXPECT_EQ(four.sent, one.sent);
  EXPECT_EQ(four.blocked, one.blocked);
  EXPECT_EQ(four.net_sent, one.net_sent);
  EXPECT_EQ(four.net_delivered, one.net_delivered);
  EXPECT_EQ(four.digest, one.digest);
}

}  // namespace
}  // namespace son::client
