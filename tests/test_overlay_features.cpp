// Tests for crash-stop failures, authenticated control plane, compound-flow
// transformers, parallel overlays, and the socket-style client API.
#include <gtest/gtest.h>

#include "client/socket.hpp"
#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "overlay/transform.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;

// ---- Crash-stop failures ----------------------------------------------------

TEST(Crash, NeighborsDetectAndAdvertiseLinksDown) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{1});
  fx.overlay->settle(3_s);
  fx.overlay->node(2).set_crashed(true);
  sim.run_for(2_s);
  // Node 0's topology view must show every link of node 2 down.
  const auto& db = fx.overlay->node(0).topology();
  const auto& g = fx.overlay->designed_topology();
  for (const auto& [nbr, e] : g.neighbors(2)) {
    EXPECT_FALSE(db.link_up(static_cast<LinkBit>(e))) << "link " << e;
  }
}

TEST(Crash, TrafficReroutesAroundCrashedNode) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{2});
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(10);
  auto& dst = fx.overlay->node(4).connect(11);
  client::MeasuringSink sink{dst};
  client::CbrSender sender{sim, src,
                           {Destination::unicast(4, 11), ServiceSpec{}, 200, 200,
                            sim.now(), sim.now() + 10_s}};
  // Crash whatever node is currently the first hop's far end at t+2s.
  sim.schedule(2_s, [&]() {
    const LinkBit nh = fx.overlay->node(0).router().next_hop(4);
    const auto& g = fx.overlay->designed_topology();
    fx.overlay->node(static_cast<NodeId>(g.other_end(nh, 0))).set_crashed(true);
  });
  sim.run_for(12_s);
  // Sub-second outage out of 10 s at 200/s: lose at most ~200 messages.
  EXPECT_GT(sink.delivery_ratio(sender.sent()), 0.90);
}

TEST(Crash, RecoveryRestoresLinks) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{3});
  fx.overlay->settle(3_s);
  fx.overlay->node(2).set_crashed(true);
  sim.run_for(2_s);
  fx.overlay->node(2).set_crashed(false);
  sim.run_for(3_s);
  const auto& db = fx.overlay->node(0).topology();
  const auto& g = fx.overlay->designed_topology();
  for (const auto& [nbr, e] : g.neighbors(2)) {
    EXPECT_TRUE(db.link_up(static_cast<LinkBit>(e))) << "link " << e;
  }
}

TEST(Crash, CrashedNodeClientsSilent) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{4});
  fx.overlay->settle(3_s);
  auto& dst = fx.overlay->node(3).connect(11);
  client::MeasuringSink sink{dst};
  fx.overlay->node(0).set_crashed(true);
  auto& src = fx.overlay->node(0).connect(10);
  src.send(Destination::unicast(3, 11), make_payload(100), ServiceSpec{});
  sim.run_for(1_s);
  EXPECT_EQ(sink.received(), 0u);
}

// ---- Authenticated control plane ------------------------------------------------

struct AuthFixture {
  Simulator sim;
  GraphFixture fx;

  AuthFixture() {
    GraphOptions gopts;
    gopts.node.authenticate = true;
    gopts.node.master_key[3] = 0x77;
    fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{5});
    fx.overlay->settle(3_s);
  }
};

TEST(ControlAuth, LegitimateControlTrafficFlows) {
  AuthFixture f;
  // Hellos and LSAs verified fine: topology is fully up, no auth failures.
  for (NodeId n = 0; n < f.fx.overlay->size(); ++n) {
    EXPECT_EQ(f.fx.overlay->node(n).stats().control_auth_failures, 0u);
  }
  const auto& g = f.fx.overlay->designed_topology();
  for (topo::EdgeIndex e = 0; e < g.num_edges(); ++e) {
    EXPECT_TRUE(f.fx.overlay->node(0).topology().link_up(static_cast<LinkBit>(e)));
  }
}

TEST(ControlAuth, ForgedLsaInjectionRejected) {
  AuthFixture f;
  // An outsider (no keys) injects a datagram claiming node 3's links are
  // all down. Without authentication this would poison routing network-wide.
  LinkStateAd forged;
  forged.origin = 3;
  forged.seq = 1'000'000;  // very fresh
  const auto& g = f.fx.overlay->designed_topology();
  for (const auto& [nbr, e] : g.neighbors(3)) {
    forged.links.push_back(LinkReport{static_cast<LinkBit>(e), false, 1.0, 0.0});
  }
  LinkFrame frame;
  frame.link = static_cast<LinkBit>(g.neighbors(0).front().second);
  frame.from = static_cast<NodeId>(g.neighbors(0).front().first);
  frame.to = 0;
  frame.type = FrameType::kLsa;
  frame.control = forged;
  frame.authenticated = false;  // outsider has no key

  net::Datagram d;
  d.src = f.fx.hosts[1];
  d.dst = f.fx.hosts[0];
  d.dst_port = 8100;
  d.payload = frame;
  f.fx.internet->send(std::move(d));
  f.sim.run_for(1_s);

  EXPECT_GE(f.fx.overlay->node(0).stats().control_auth_failures, 1u);
  // Topology unaffected: node 3's links still up, stored seq untouched.
  EXPECT_LT(f.fx.overlay->node(0).topology().stored_seq(3), 1'000'000u);
  for (const auto& [nbr, e] : g.neighbors(3)) {
    EXPECT_TRUE(f.fx.overlay->node(0).topology().link_up(static_cast<LinkBit>(e)));
  }
}

TEST(ControlAuth, UnauthenticatedDeploymentAcceptsPlainControl) {
  // Sanity: in non-IT deployments the same injection IS accepted (that is
  // exactly the gap authentication closes).
  Simulator sim;
  GraphOptions gopts;  // authenticate = false
  auto fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{6});
  fx.overlay->settle(3_s);
  LinkStateAd forged;
  forged.origin = 3;
  forged.seq = 1'000'000;
  LinkFrame frame;
  const auto& g = fx.overlay->designed_topology();
  frame.link = static_cast<LinkBit>(g.neighbors(0).front().second);
  frame.from = static_cast<NodeId>(g.neighbors(0).front().first);
  frame.to = 0;
  frame.type = FrameType::kLsa;
  frame.control = forged;
  net::Datagram d;
  d.src = fx.hosts[1];
  d.dst = fx.hosts[0];
  d.dst_port = 8100;
  d.payload = frame;
  fx.internet->send(std::move(d));
  sim.run_for(1_s);
  EXPECT_EQ(fx.overlay->node(0).topology().stored_seq(3), 1'000'000u);
}

// ---- Compound flows (transformers) --------------------------------------------

TEST(Transform, PipelineTransformsAndForwards) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{7});
  auto& net = *fx.overlay;

  // source (0) -> transformer at 2 -> consumer at 4.
  FlowTransformer::Options topts;
  topts.in_port = 100;
  topts.out = Destination::unicast(4, 200);
  topts.processing = 5_ms;
  FlowTransformer transformer{sim, net.node(2), topts, [](const Message& m) {
                                return make_payload(m.payload_size() / 2, 0x99);
                              }};

  auto& consumer = net.node(4).connect(200);
  std::vector<std::size_t> sizes;
  sim::SampleSet e2e;
  consumer.set_handler([&](const Message& m, Duration lat) {
    sizes.push_back(m.payload_size());
    e2e.add(lat.to_millis_f());
  });
  net.settle(3_s);

  auto& src = net.node(0).connect(99);
  for (int i = 0; i < 5; ++i) {
    src.send(Destination::unicast(2, 100), make_payload(800), ServiceSpec{});
  }
  sim.run_for(1_s);
  ASSERT_EQ(sizes.size(), 5u);
  for (const auto s : sizes) EXPECT_EQ(s, 400u);
  EXPECT_EQ(transformer.stats().consumed, 5u);
  EXPECT_EQ(transformer.stats().produced, 5u);
  // End-to-end latency covers both legs plus the 5 ms processing (origin
  // time is preserved across the transformation).
  EXPECT_GT(e2e.min(), 2.0 * 10.0 + 5.0);
}

TEST(Transform, FilteringDropsMessages) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{8});
  auto& net = *fx.overlay;
  FlowTransformer::Options topts;
  topts.in_port = 100;
  topts.out = Destination::unicast(4, 200);
  int n = 0;
  FlowTransformer filter{sim, net.node(2), topts, [&n](const Message&) -> Payload {
                           return (++n % 2 == 0) ? make_payload(10) : nullptr;
                         }};
  auto& consumer = net.node(4).connect(200);
  client::MeasuringSink sink{consumer};
  net.settle(3_s);
  auto& src = net.node(0).connect(99);
  for (int i = 0; i < 10; ++i) {
    src.send(Destination::unicast(2, 100), make_payload(100), ServiceSpec{});
  }
  sim.run_for(1_s);
  EXPECT_EQ(sink.received(), 5u);
  EXPECT_EQ(filter.stats().filtered, 5u);
}

TEST(Transform, AnycastFacilityFailover) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{9});
  auto& net = *fx.overlay;
  constexpr GroupId kFacilities = 900;

  FlowTransformer::Options topts;
  topts.in_port = 100;
  topts.in_group = kFacilities;
  topts.out = Destination::unicast(4, 200);
  FlowTransformer near_facility{sim, net.node(1), topts,
                                [](const Message& m) { return m.payload; }};
  FlowTransformer far_facility{sim, net.node(6), topts,
                               [](const Message& m) { return m.payload; }};
  auto& consumer = net.node(4).connect(200);
  client::MeasuringSink sink{consumer};
  net.settle(3_s);

  auto& src = net.node(0).connect(99);
  client::CbrSender sender{sim, src,
                           {Destination::anycast(kFacilities), ServiceSpec{}, 100, 100,
                            sim.now(), sim.now() + 10_s}};
  sim.schedule(4_s, [&]() { net.node(1).set_crashed(true); });
  sim.run_for(12_s);

  EXPECT_GT(near_facility.stats().consumed, 100u);  // served the first 4 s
  EXPECT_GT(far_facility.stats().consumed, 400u);   // took over after crash
  EXPECT_GT(sink.delivery_ratio(sender.sent()), 0.90);
}

// ---- Parallel overlays -------------------------------------------------------------

TEST(ParallelOverlays, TwoOverlaysShareMachinesIndependently) {
  // §II-D: "Each computer in a cluster can act as a node in one or several
  // overlays... multiple overlays can even be run in parallel (with each
  // overlay potentially using a different variant of the overlay software)."
  Simulator sim;
  net::Internet inet{sim, sim::Rng{10}};
  const net::IspId isp = inet.add_isp("one");
  std::vector<net::HostId> hosts;
  std::vector<net::RouterId> routers;
  for (int i = 0; i < 4; ++i) {
    routers.push_back(inet.add_router(isp, "r" + std::to_string(i)));
    hosts.push_back(inet.add_host("h" + std::to_string(i)));
    net::LinkConfig access;
    access.prop_delay = sim::Duration::microseconds(50);
    inet.attach_host(hosts.back(), routers.back(), access);
  }
  net::LinkConfig fiber;
  fiber.prop_delay = 5_ms;
  for (int i = 0; i + 1 < 4; ++i) inet.add_link(routers[static_cast<std::size_t>(i)], routers[static_cast<std::size_t>(i) + 1], fiber);

  topo::Graph chain(4);
  chain.add_edge(0, 1, 5);
  chain.add_edge(1, 2, 5);
  chain.add_edge(2, 3, 5);

  NodeConfig cfg_a;  // plain overlay on port 8100
  NodeConfig cfg_b;  // authenticated IT overlay variant on port 8200
  cfg_b.daemon_port = 8200;
  cfg_b.authenticate = true;
  cfg_b.master_key[0] = 0x11;
  OverlayNetwork overlay_a{sim, inet, chain, hosts, cfg_a, sim::Rng{11}};
  OverlayNetwork overlay_b{sim, inet, chain, hosts, cfg_b, sim::Rng{12}};
  overlay_a.start();
  overlay_b.start();
  sim.run_for(3_s);

  auto& dst_a = overlay_a.node(3).connect(50);
  auto& dst_b = overlay_b.node(3).connect(50);
  client::MeasuringSink sink_a{dst_a};
  client::MeasuringSink sink_b{dst_b};

  ServiceSpec it_spec;
  it_spec.link_protocol = LinkProtocol::kITPriority;
  overlay_a.node(0).connect(49).send(Destination::unicast(3, 50), make_payload(100),
                                     ServiceSpec{});
  overlay_b.node(0).connect(49).send(Destination::unicast(3, 50), make_payload(100),
                                     it_spec);
  sim.run_for(1_s);
  EXPECT_EQ(sink_a.received(), 1u);
  EXPECT_EQ(sink_b.received(), 1u);
  // No cross-talk: each overlay saw only its own control plane.
  EXPECT_EQ(overlay_a.node(0).stats().control_auth_failures, 0u);
  EXPECT_EQ(overlay_b.node(0).stats().control_auth_failures, 0u);
}

// ---- Socket API ---------------------------------------------------------------------

struct SocketFixture {
  Simulator sim;
  GraphFixture fx;

  SocketFixture() {
    GraphOptions gopts;
    fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{13});
    fx.overlay->settle(3_s);
  }
};

TEST(Socket, UnicastSendRecv) {
  SocketFixture f;
  client::OverlaySocket a{f.fx.overlay->node(0), 5000};
  client::OverlaySocket b{f.fx.overlay->node(3), 5001};
  EXPECT_EQ(a.sendto("hello structured overlays", client::unicast_address(3), 5001), 25);
  f.sim.run_for(500_ms);
  const auto got = b.recvfrom();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::string(got->data.begin(), got->data.end()), "hello structured overlays");
  EXPECT_EQ(got->from, client::unicast_address(0));
  EXPECT_EQ(got->from_port, 5000);
  EXPECT_GT(got->latency, sim::Duration::zero());
  EXPECT_FALSE(b.recvfrom().has_value());  // drained
}

TEST(Socket, MulticastViaClassDLikeAddress) {
  SocketFixture f;
  const auto group = client::multicast_address(77);
  EXPECT_TRUE(client::is_multicast(group));
  client::OverlaySocket rx1{f.fx.overlay->node(2), 6000};
  client::OverlaySocket rx2{f.fx.overlay->node(4), 6000};
  rx1.join(group);
  rx2.join(group);
  f.sim.run_for(2_s);
  client::OverlaySocket tx{f.fx.overlay->node(0), 6001};
  tx.sendto("feed", group, 6000);
  f.sim.run_for(500_ms);
  EXPECT_EQ(rx1.pending(), 1u);
  EXPECT_EQ(rx2.pending(), 1u);
}

TEST(Socket, AnycastAddressDeliversToNearest) {
  SocketFixture f;
  const auto svc = client::anycast_address(5);
  EXPECT_TRUE(client::is_anycast(svc));
  client::OverlaySocket near_rx{f.fx.overlay->node(1), 6000};
  client::OverlaySocket far_rx{f.fx.overlay->node(3), 6000};
  near_rx.join(svc);
  far_rx.join(svc);
  f.sim.run_for(2_s);
  client::OverlaySocket tx{f.fx.overlay->node(0), 6001};
  for (int i = 0; i < 5; ++i) tx.sendto("rpc", svc, 6000);
  f.sim.run_for(500_ms);
  EXPECT_EQ(near_rx.pending(), 5u);
  EXPECT_EQ(far_rx.pending(), 0u);
}

TEST(Socket, ReceiveBufferBounds) {
  SocketFixture f;
  client::OverlaySocket a{f.fx.overlay->node(0), 5000};
  client::OverlaySocket b{f.fx.overlay->node(1), 5001};
  b.set_receive_buffer(3);
  for (int i = 0; i < 10; ++i) a.sendto("x", client::unicast_address(1), 5001);
  f.sim.run_for(500_ms);
  EXPECT_EQ(b.pending(), 3u);
  EXPECT_EQ(b.dropped_full(), 7u);
}

TEST(Socket, ServiceSpecSelectsProtocol) {
  SocketFixture f;
  // 20% loss on one fiber; a reliable-service socket still gets everything.
  const auto [ra, rb] = f.fx.internet->link_endpoints(f.fx.fiber[0]);
  f.fx.internet->link_dir(f.fx.fiber[0], ra).set_loss_model(net::make_bernoulli(0.2));

  client::OverlaySocket a{f.fx.overlay->node(0), 5000};
  client::OverlaySocket b{f.fx.overlay->node(1), 5001};
  ServiceSpec reliable;
  reliable.link_protocol = LinkProtocol::kReliable;
  a.set_service(reliable);
  for (int i = 0; i < 100; ++i) a.sendto("pkt", client::unicast_address(1), 5001);
  f.sim.run_for(3_s);
  EXPECT_EQ(b.pending(), 100u);
}

}  // namespace
}  // namespace son::overlay
