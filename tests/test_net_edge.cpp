// Underlay edge cases: peering fallback, TTL, router failures, and realtime
// protocol corner cases.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "net/internet.hpp"
#include "overlay/network.hpp"

namespace son {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

net::LinkConfig link_ms(std::int64_t ms) {
  net::LinkConfig cfg;
  cfg.prop_delay = Duration::milliseconds(ms);
  cfg.bandwidth_bps = 1e9;
  return cfg;
}

TEST(InternetEdge, PeeringCarriesTrafficWhenOnNetBreaks) {
  // Host 1 on ISP A only; host 2 on ISP B only; the two ISPs peer at one
  // city. All traffic must cross the peering link.
  Simulator sim;
  net::Internet inet{sim, sim::Rng{1}};
  const auto a = inet.add_isp("a");
  const auto b = inet.add_isp("b");
  const auto ra1 = inet.add_router(a, "ra1");
  const auto ra2 = inet.add_router(a, "ra2");
  const auto rb1 = inet.add_router(b, "rb1");
  const auto rb2 = inet.add_router(b, "rb2");
  inet.add_link(ra1, ra2, link_ms(10));
  inet.add_link(rb1, rb2, link_ms(10));
  inet.add_link(ra2, rb1, link_ms(1));  // peering
  const auto h1 = inet.add_host("h1");
  const auto h2 = inet.add_host("h2");
  inet.attach_host(h1, ra1, link_ms(0));
  inet.attach_host(h2, rb2, link_ms(0));

  int got = 0;
  inet.bind(h2, [&](const net::Datagram&) { ++got; });
  net::Datagram d;
  d.src = h1;
  d.dst = h2;
  inet.send(std::move(d));
  sim.run();
  EXPECT_EQ(got, 1);
  const auto lat = inet.path_latency(h1, net::kAnyAttach, h2, net::kAnyAttach);
  ASSERT_TRUE(lat.has_value());
  EXPECT_NEAR(lat->to_millis_f(), 21.15, 0.5);
}

TEST(InternetEdge, RouterFailureBlackholesUntilConvergence) {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{2}};
  const auto a = inet.add_isp("a");
  const auto r1 = inet.add_router(a, "r1");
  const auto r2 = inet.add_router(a, "r2");
  const auto r3 = inet.add_router(a, "r3");
  inet.add_link(r1, r2, link_ms(5));
  inet.add_link(r2, r3, link_ms(5));
  inet.add_link(r1, r3, link_ms(30));  // detour
  const auto h1 = inet.add_host("h1");
  const auto h2 = inet.add_host("h2");
  inet.attach_host(h1, r1, link_ms(0));
  inet.attach_host(h2, r3, link_ms(0));

  int got = 0;
  inet.bind(h2, [&](const net::Datagram&) { ++got; });
  inet.set_router_up(r2, false);
  // Before convergence: stale route through the dead router.
  net::Datagram d1;
  d1.src = h1;
  d1.dst = h2;
  inet.send(std::move(d1));
  sim.run_for(1_s);
  EXPECT_EQ(got, 0);
  EXPECT_EQ(inet.counters().dropped[static_cast<int>(net::DropReason::kRouterDown)], 1u);
  // After convergence: the 30 ms direct link carries it.
  sim.run();
  net::Datagram d2;
  d2.src = h1;
  d2.dst = h2;
  inet.send(std::move(d2));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST(InternetEdge, QueueDelayVisibleThroughAccessors) {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{3}};
  const auto a = inet.add_isp("a");
  const auto r1 = inet.add_router(a, "r1");
  const auto r2 = inet.add_router(a, "r2");
  net::LinkConfig thin = link_ms(5);
  thin.bandwidth_bps = 1e6;  // 1 Mbps: 1250 B takes 10 ms
  const auto l = inet.add_link(r1, r2, thin);
  auto& dir = inet.link_dir(l, r1);
  EXPECT_EQ(dir.queue_delay(TimePoint::zero()), Duration::zero());
  dir.transmit(TimePoint::zero(), 1250);
  dir.transmit(TimePoint::zero(), 1250);
  EXPECT_EQ(dir.queue_delay(TimePoint::zero()), Duration::milliseconds(20));
}

TEST(InternetEdge, CountersDistinguishDropReasons) {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{4}};
  const auto a = inet.add_isp("a");
  const auto r1 = inet.add_router(a, "r1");
  const auto r2 = inet.add_router(a, "r2");
  net::LinkConfig lossy = link_ms(5);
  lossy.loss_rate = 1.0;
  inet.add_link(r1, r2, lossy);
  const auto h1 = inet.add_host("h1");
  const auto h2 = inet.add_host("h2");
  inet.attach_host(h1, r1, link_ms(0));
  inet.attach_host(h2, r2, link_ms(0));
  inet.bind(h2, [](const net::Datagram&) {});
  net::Datagram d;
  d.src = h1;
  d.dst = h2;
  inet.send(std::move(d));
  sim.run();
  EXPECT_EQ(inet.counters().sent, 1u);
  EXPECT_EQ(inet.counters().delivered, 0u);
  EXPECT_EQ(inet.counters().dropped[static_cast<int>(net::DropReason::kRandomLoss)], 1u);
}

// ---- Realtime corner cases ---------------------------------------------------

TEST(RealtimeEdge, DeadlineShorterThanRttStillDeliversDirectPackets) {
  // Deadline 15 ms on a 10 ms hop (RTT 20 ms): recovery can never make it,
  // but clean packets flow and the protocol neither crashes nor spams.
  Simulator sim;
  overlay::ChainOptions opts;
  opts.n_nodes = 2;
  opts.hop_latency = 10_ms;
  auto fx = overlay::build_chain(sim, opts, sim::Rng{5});
  const auto [a, b] = fx.internet->link_endpoints(fx.hop_links[0]);
  fx.internet->link_dir(fx.hop_links[0], a).set_loss_model(net::make_bernoulli(0.1));
  fx.overlay->settle(3_s);

  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(1).connect(2);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;
  spec.link_protocol = overlay::LinkProtocol::kRealtimeNM;
  spec.deadline = 15_ms;
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(1, 2), spec, 500, 300,
                            sim.now(), sim.now() + 5_s}};
  sim.run_for(8_s);
  const double ratio = sink.delivery_ratio(sender.sent());
  EXPECT_GT(ratio, 0.85);  // ~the clean fraction
  // Nothing usefully late: everything delivered arrived near the one-way.
  EXPECT_LT(sink.latencies_ms().quantile(0.999), 45.0);
}

TEST(RealtimeEdge, IdleFlowResumesCleanly) {
  // A realtime flow that pauses for seconds (sender history expires) and
  // resumes must not trigger a storm of requests for the silent span.
  Simulator sim;
  overlay::ChainOptions opts;
  opts.n_nodes = 2;
  auto fx = overlay::build_chain(sim, opts, sim::Rng{6});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(1).connect(2);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;
  spec.link_protocol = overlay::LinkProtocol::kRealtimeNM;
  spec.deadline = 100_ms;
  for (int burst = 0; burst < 3; ++burst) {
    sim.schedule(Duration::seconds(burst * 5), [&]() {
      for (int i = 0; i < 10; ++i) {
        src.send(overlay::Destination::unicast(1, 2), overlay::make_payload(100), spec);
      }
    });
  }
  sim.run_for(20_s);
  EXPECT_EQ(sink.received(), 30u);
  EXPECT_EQ(sink.duplicates(), 0u);
}

}  // namespace
}  // namespace son
