// Flight recorder: ring semantics, deterministic merge order, macro cost
// contract (arguments unevaluated when disabled), trace-file round trip,
// and a pinned end-to-end path trace for a k=2 disjoint-path flow.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "client/traffic.hpp"
#include "obs/recorder.hpp"
#include "overlay/network.hpp"
#include "sim/simulator.hpp"

namespace son::obs {
namespace {

using namespace son::sim::literals;
using sim::Simulator;

TEST(ObsRecorder, MergesChronologicallyWithNodeOrderTies) {
  Simulator sim;
  Recorder rec{3, 8};
  rec.attach(sim);
  // Two records at t=0 written in REVERSE node order, one later record.
  rec.record(2, Category::kMark, 0, 22, 0);
  rec.record(0, Category::kMark, 0, 11, 0);
  sim.schedule(5_ms, [&]() { rec.record(1, Category::kMark, 0, 33, 0); });
  sim.run();

  const auto m = rec.merged();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].a, 11u);  // t=0 tie broken by node index: node 0 first
  EXPECT_EQ(m[1].a, 22u);
  EXPECT_EQ(m[2].a, 33u);
  EXPECT_EQ(m[2].t_ns, 5'000'000);
}

TEST(ObsRecorder, RingOverflowKeepsTheRecentPast) {
  Recorder rec{1, 4};
  for (std::uint64_t i = 0; i < 10; ++i) rec.record(0, Category::kMark, 0, i, 0);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  const auto m = rec.merged();
  ASSERT_EQ(m.size(), 4u);  // only the newest ring_capacity records survive
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(m[i].a, 6 + i);
}

TEST(ObsRecorder, OutOfRangeNodeGoesToSystemRing) {
  Recorder rec{2, 4};
  rec.record(kSystemNode, Category::kMark, 0, 1, 0);
  rec.record(7, Category::kMark, 0, 2, 0);  // beyond num_nodes: system ring too
  EXPECT_EQ(rec.total_recorded(), 2u);
  EXPECT_EQ(rec.merged().size(), 2u);
}

TEST(ObsRecorder, MacroArgumentsNotEvaluatedWhenDisabled) {
  ASSERT_EQ(Recorder::current(), nullptr);
  int evals = 0;
  SON_OBS(0, Category::kMark, 0, static_cast<std::uint64_t>(++evals), 0);
  EXPECT_EQ(evals, 0);  // disabled: single branch, operands untouched

  Recorder rec{1, 4};
  {
    ScopedRecorder scope{rec};
    ASSERT_EQ(Recorder::current(), &rec);
    SON_OBS(0, Category::kMark, 0, static_cast<std::uint64_t>(++evals), 0);
  }
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(Recorder::current(), nullptr);
  EXPECT_EQ(rec.total_recorded(), 1u);
}

TEST(ObsRecorder, PathSamplingFiltersUnsampledOrigins) {
  Recorder rec{2, 8};
  rec.sample_origin(100);
  rec.record_path(100, 0, HopKind::kOrigin, 0);
  rec.record_path(200, 0, HopKind::kOrigin, 0);  // unsampled: dropped
  EXPECT_EQ(rec.total_recorded(), 1u);
  EXPECT_EQ(rec.path(100).hops.size(), 1u);
  EXPECT_TRUE(rec.path(200).empty());
}

TEST(ObsRecorder, TraceFileRoundTrip) {
  Simulator sim;
  Recorder rec{2, 8};
  rec.attach(sim);
  rec.record(0, Category::kMark, 3, 7, 9);
  rec.record(1, Category::kDrop, 1, 5, 6);
  const std::string path = testing::TempDir() + "son_obs_roundtrip.trace";
  ASSERT_TRUE(rec.write(path));

  const auto back = Recorder::read(path);
  ASSERT_TRUE(back.has_value());
  const auto orig = rec.merged();
  ASSERT_EQ(back->size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&(*back)[i], &orig[i], sizeof(EventRecord)));
  }
  std::remove(path.c_str());
}

TEST(ObsRecorder, ReadRejectsForeignFiles) {
  const std::string path = testing::TempDir() + "son_obs_garbage.trace";
  {
    std::ofstream f{path};
    f << "definitely not a trace file";
  }
  EXPECT_FALSE(Recorder::read(path).has_value());
  EXPECT_FALSE(Recorder::read(testing::TempDir() + "does_not_exist.trace").has_value());
  std::remove(path.c_str());
}

// ---- End-to-end path trace --------------------------------------------------

TEST(ObsRecorder, PathTracePinsDisjointPathFlowThroughDiamond) {
  // Diamond overlay: 0-1-3 (5ms legs) and 0-2-3 (10ms legs). A k=2
  // disjoint-path unicast floods the two-path link mask: one copy down each
  // side. The fast copy delivers at node 3 and (mask semantics) continues
  // onto the remaining mask edge back toward node 2; that echo and the slow
  // original both end in dedup drops. The sampled trace pins the whole
  // journey, echoes included.
  Simulator sim;
  topo::Graph g{4};
  g.add_edge(0, 1, 5);
  g.add_edge(1, 3, 5);
  g.add_edge(0, 2, 10);
  g.add_edge(2, 3, 10);
  overlay::GraphFixture fx = overlay::build_graph_fixture(sim, g, {}, sim::Rng{5});
  fx.overlay->settle(3_s);

  Recorder rec{4, 1 << 12};
  rec.attach(sim);
  ScopedRecorder scope{rec};
  const std::uint64_t oid = 1;  // node 0's first client message: (0 << 48) | 1
  rec.sample_origin(oid);

  auto& src = fx.overlay->node(0).connect(100);
  auto& dst = fx.overlay->node(3).connect(200);
  client::MeasuringSink sink{dst};
  overlay::ServiceSpec spec;
  spec.scheme = overlay::RouteScheme::kDisjointPaths;
  spec.num_paths = 2;
  const sim::TimePoint t0 = sim.now();
  ASSERT_TRUE(src.send(overlay::Destination::unicast(3, 200), overlay::make_payload(100), spec));
  sim.run_for(1_s);
  ASSERT_EQ(sink.received(), 1u);

  const PathTrace trace = rec.path(oid);
  ASSERT_EQ(trace.hops.size(), 9u);
  const HopKind kinds[] = {HopKind::kOrigin,    HopKind::kForward,  HopKind::kForward,
                           HopKind::kForward,   HopKind::kForward,  HopKind::kDeliver,
                           HopKind::kForward,   HopKind::kDropDedup, HopKind::kDropDedup};
  const std::uint16_t nodes[] = {0, 0, 0, 1, 2, 3, 3, 3, 2};
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(trace.hops[i].kind, kinds[i]) << "hop " << i;
    EXPECT_EQ(trace.hops[i].node, nodes[i]) << "hop " << i;
  }
  // The source fans out on two DIFFERENT overlay links.
  EXPECT_NE(trace.hops[1].link, trace.hops[2].link);
  // Fast side delivers at ~10ms; the slow copy (at node 3) and the echo the
  // destination pushed back (at node 2) are both suppressed at ~20ms.
  const auto since = [&](std::size_t i) { return (trace.hops[i].time - t0).to_millis_f(); };
  EXPECT_GE(since(5), 10.0);
  EXPECT_LT(since(5), 12.0);
  EXPECT_GE(since(7), 20.0);
  EXPECT_LT(since(7), 22.0);
  EXPECT_GE(since(8), 20.0);
  EXPECT_LT(since(8), 22.0);
}

}  // namespace
}  // namespace son::obs
