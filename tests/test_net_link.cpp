#include "net/link.hpp"

#include <gtest/gtest.h>

namespace son::net {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

LinkConfig fast_link() {
  LinkConfig cfg;
  cfg.prop_delay = 10_ms;
  cfg.bandwidth_bps = 8e6;  // 1000 bytes takes 1 ms
  cfg.max_queue_delay = 5_ms;
  cfg.loss_rate = 0.0;
  return cfg;
}

TEST(LinkDirection, PropagationPlusSerialization) {
  LinkDirection link{fast_link(), sim::Rng{1}};
  const auto out = link.transmit(TimePoint::zero(), 1000);
  ASSERT_TRUE(out.delivered);
  // 1 ms serialization + 10 ms propagation.
  EXPECT_EQ(out.arrival, TimePoint::zero() + 11_ms);
}

TEST(LinkDirection, InfiniteBandwidthSkipsSerialization) {
  LinkConfig cfg = fast_link();
  cfg.bandwidth_bps = 0;
  LinkDirection link{cfg, sim::Rng{2}};
  const auto out = link.transmit(TimePoint::zero(), 1'000'000);
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.arrival, TimePoint::zero() + 10_ms);
}

TEST(LinkDirection, BackToBackPacketsQueue) {
  LinkDirection link{fast_link(), sim::Rng{3}};
  const auto a = link.transmit(TimePoint::zero(), 1000);
  const auto b = link.transmit(TimePoint::zero(), 1000);
  ASSERT_TRUE(a.delivered);
  ASSERT_TRUE(b.delivered);
  EXPECT_EQ(b.arrival - a.arrival, 1_ms);  // serialized one after the other
}

TEST(LinkDirection, QueueOverflowTailDrops) {
  LinkDirection link{fast_link(), sim::Rng{4}};
  // 1 ms per packet, max queue wait 5 ms: the 7th simultaneous packet would
  // wait 6 ms > 5 ms.
  int delivered = 0, dropped = 0;
  for (int i = 0; i < 10; ++i) {
    const auto out = link.transmit(TimePoint::zero(), 1000);
    out.delivered ? ++delivered : ++dropped;
    if (!out.delivered) {
      EXPECT_EQ(out.reason, DropReason::kQueueOverflow);
    }
  }
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(dropped, 4);
}

TEST(LinkDirection, QueueDrainsOverTime) {
  LinkDirection link{fast_link(), sim::Rng{5}};
  for (int i = 0; i < 6; ++i) link.transmit(TimePoint::zero(), 1000);
  EXPECT_GT(link.queue_delay(TimePoint::zero()), Duration::zero());
  EXPECT_EQ(link.queue_delay(TimePoint::zero() + 10_ms), Duration::zero());
  const auto out = link.transmit(TimePoint::zero() + 10_ms, 1000);
  EXPECT_TRUE(out.delivered);
}

TEST(LinkDirection, LossModelApplies) {
  LinkConfig cfg = fast_link();
  cfg.loss_rate = 1.0;
  LinkDirection link{cfg, sim::Rng{6}};
  const auto out = link.transmit(TimePoint::zero(), 100);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.reason, DropReason::kRandomLoss);
}

TEST(LinkDirection, ForcedLossWindowOnlyInsideWindow) {
  LinkDirection link{fast_link(), sim::Rng{7}};
  link.add_forced_loss_window(TimePoint::zero() + 10_ms, TimePoint::zero() + 20_ms, 1.0);
  EXPECT_TRUE(link.transmit(TimePoint::zero() + 5_ms, 100).delivered);
  EXPECT_FALSE(link.transmit(TimePoint::zero() + 15_ms, 100).delivered);
  EXPECT_TRUE(link.transmit(TimePoint::zero() + 25_ms, 100).delivered);
}

TEST(LinkDirection, CountersTrackOutcomes) {
  LinkConfig cfg = fast_link();
  LinkDirection link{cfg, sim::Rng{8}};
  for (int i = 0; i < 10; ++i) link.transmit(TimePoint::zero(), 1000);
  const auto& c = link.counters();
  EXPECT_EQ(c.offered, 10u);
  EXPECT_EQ(c.delivered, 6u);
  EXPECT_EQ(c.lost_queue, 4u);
  EXPECT_EQ(c.bytes_delivered, 6000u);
}

TEST(LinkDirection, SetLossModelReplacesDefault) {
  LinkDirection link{fast_link(), sim::Rng{9}};
  link.set_loss_model(make_bernoulli(1.0));
  EXPECT_FALSE(link.transmit(TimePoint::zero(), 100).delivered);
  link.set_loss_model(make_no_loss());
  EXPECT_TRUE(link.transmit(TimePoint::zero(), 100).delivered);
}

}  // namespace
}  // namespace son::net
