#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace son::sim {
namespace {

using namespace son::sim::literals;

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::milliseconds(1).us(), 1000);
  EXPECT_EQ(Duration::microseconds(1).ns(), 1000);
  EXPECT_EQ(Duration::from_seconds_f(0.001), Duration::milliseconds(1));
  EXPECT_EQ(Duration::from_millis_f(1.5).us(), 1500);
}

TEST(Duration, Literals) {
  EXPECT_EQ(5_ms, Duration::milliseconds(5));
  EXPECT_EQ(2_s, Duration::seconds(2));
  EXPECT_EQ(7_us, Duration::microseconds(7));
  EXPECT_EQ(9_ns, Duration::nanoseconds(9));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(10_ms + 5_ms, 15_ms);
  EXPECT_EQ(10_ms - 5_ms, 5_ms);
  EXPECT_EQ(10_ms * 3, 30_ms);
  EXPECT_EQ(10_ms * 0.5, 5_ms);
  EXPECT_EQ(10_ms / 2, 5_ms);
  EXPECT_DOUBLE_EQ(10_ms / (5_ms), 2.0);
  EXPECT_EQ(-(3_ms), 0_ms - 3_ms);
}

TEST(Duration, Ordering) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(1_ms, 1_ms);
  EXPECT_EQ(Duration::zero(), 0_ns);
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ((1500_us).to_millis_f(), 1.5);
  EXPECT_DOUBLE_EQ((2500_ms).to_seconds_f(), 2.5);
  EXPECT_EQ((2500_us).ms(), 2);  // truncation
}

TEST(Duration, ToStringPicksUnit) {
  EXPECT_EQ((2_s).to_string(), "2.000s");
  EXPECT_EQ((1500_us).to_string(), "1.500ms");
  EXPECT_EQ((999_ns).to_string(), "999ns");
  EXPECT_EQ((3_us).to_string(), "3.000us");
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + 5_ms;
  EXPECT_EQ(t1 - t0, 5_ms);
  EXPECT_EQ(t1 - 2_ms, t0 + 3_ms);
  EXPECT_LT(t0, t1);
  TimePoint t2 = t1;
  t2 += 1_ms;
  EXPECT_EQ(t2 - t1, 1_ms);
}

TEST(TimePoint, CommutativeAdd) {
  EXPECT_EQ(5_ms + TimePoint::zero(), TimePoint::zero() + 5_ms);
}

}  // namespace
}  // namespace son::sim
