// Integration tests for dynamic behaviour: group churn, flow aggregation,
// asymmetric provider backbones, loopback delivery, and the global map.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "overlay/network.hpp"
#include "overlay/reliable_link.hpp"

namespace son::overlay {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;

// ---- Group churn ------------------------------------------------------------

TEST(GroupChurn, LateJoinerStartsReceiving) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{1});
  fx.overlay->settle(3_s);
  constexpr GroupId kG = 50;

  auto& early = fx.overlay->node(3).connect(10);
  early.join(kG);
  auto& late = fx.overlay->node(5).connect(10);
  client::MeasuringSink s_early{early}, s_late{late};
  sim.run_for(2_s);

  auto& src = fx.overlay->node(0).connect(9);
  client::CbrSender sender{sim, src,
                           {Destination::multicast(kG), ServiceSpec{}, 100, 100,
                            sim.now(), sim.now() + 10_s}};
  sim.schedule(4_s, [&]() { late.join(kG); });
  sim.run_for(12_s);

  EXPECT_GT(s_early.delivery_ratio(sender.sent()), 0.99);
  // The late joiner gets roughly the last 60% of the stream (joined at 4 of
  // 10 s, minus a flood-propagation beat).
  const double late_ratio = s_late.delivery_ratio(sender.sent());
  EXPECT_GT(late_ratio, 0.5);
  EXPECT_LT(late_ratio, 0.7);
}

TEST(GroupChurn, LeaverStopsReceivingAndTreePrunes) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{2});
  fx.overlay->settle(3_s);
  constexpr GroupId kG = 51;

  auto& stay = fx.overlay->node(2).connect(10);
  auto& leave = fx.overlay->node(4).connect(10);
  stay.join(kG);
  leave.join(kG);
  client::MeasuringSink s_stay{stay}, s_leave{leave};
  sim.run_for(2_s);

  auto& src = fx.overlay->node(0).connect(9);
  client::CbrSender sender{sim, src,
                           {Destination::multicast(kG), ServiceSpec{}, 100, 100,
                            sim.now(), sim.now() + 10_s}};
  sim.schedule(4_s, [&]() { leave.leave(kG); });
  sim.run_for(12_s);

  EXPECT_GT(s_stay.delivery_ratio(sender.sent()), 0.99);
  const double leave_ratio = s_leave.delivery_ratio(sender.sent());
  EXPECT_GT(leave_ratio, 0.3);
  EXPECT_LT(leave_ratio, 0.5);
  // After the leave propagates, node 4 is no longer a member anywhere.
  EXPECT_FALSE(fx.overlay->node(0).groups().is_member(4, kG));
}

TEST(GroupChurn, AnycastReselectsAfterMemberLeaves) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{3});
  fx.overlay->settle(3_s);
  constexpr GroupId kG = 52;
  auto& near = fx.overlay->node(1).connect(10);
  auto& far = fx.overlay->node(4).connect(10);
  near.join(kG);
  far.join(kG);
  client::MeasuringSink s_near{near}, s_far{far};
  sim.run_for(2_s);

  auto& src = fx.overlay->node(0).connect(9);
  src.send(Destination::anycast(kG), make_payload(10), ServiceSpec{});
  sim.run_for(1_s);
  EXPECT_EQ(s_near.received(), 1u);

  near.leave(kG);
  sim.run_for(2_s);
  src.send(Destination::anycast(kG), make_payload(10), ServiceSpec{});
  sim.run_for(1_s);
  EXPECT_EQ(s_near.received(), 1u);  // unchanged
  EXPECT_EQ(s_far.received(), 1u);   // new nearest member
}

// ---- Flow aggregation on links (§II-C) -----------------------------------------

TEST(FlowAggregation, FlowsShareOneReliableLinkInstance) {
  // "Within the overlay, application data flows may be aggregated based on
  // their source and destination overlay nodes or the services they select,
  // with state maintenance and processing performed on the aggregate flows."
  // Concretely: ALL reliable flows crossing one overlay link share one ARQ
  // instance and one sequence space.
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 2;
  auto fx = build_chain(sim, opts, sim::Rng{4});
  fx.overlay->settle(3_s);

  ServiceSpec spec;
  spec.link_protocol = LinkProtocol::kReliable;
  auto& c1 = fx.overlay->node(0).connect(1);
  auto& c2 = fx.overlay->node(0).connect(2);
  auto& d1 = fx.overlay->node(1).connect(11);
  auto& d2 = fx.overlay->node(1).connect(12);
  client::MeasuringSink s1{d1}, s2{d2};
  for (int i = 0; i < 10; ++i) {
    c1.send(Destination::unicast(1, 11), make_payload(50), spec);
    c2.send(Destination::unicast(1, 12), make_payload(50), spec);
  }
  sim.run_for(1_s);
  EXPECT_EQ(s1.received(), 10u);
  EXPECT_EQ(s2.received(), 10u);

  auto* ep = dynamic_cast<ReliableLinkEndpoint*>(
      fx.overlay->node(0).find_endpoint(fx.hop_overlay_links[0], LinkProtocol::kReliable));
  ASSERT_NE(ep, nullptr);
  // One aggregate instance carried both flows: 20 data frames on one link
  // sequence space.
  EXPECT_EQ(ep->stats().data_sent, 20u);
}

// ---- Asymmetric provider backbones --------------------------------------------

TEST(AsymmetricIsps, OverlayLinkUsesWhicheverProviderHasTheFiber) {
  // ISP A skips one edge; ISP B skips another. Each overlay link still comes
  // up on the provider(s) that built its fiber.
  Simulator sim;
  net::Internet inet{sim, sim::Rng{5}};
  const auto map = topo::continental_us();
  topo::DualIspOptions opts;
  opts.skip_in_isp_a = {0};  // ISP A has no NYC-WDC fiber
  opts.skip_in_isp_b = {1};  // ISP B has no NYC-CHI fiber
  const auto u = topo::build_dual_isp(inet, map, opts);
  overlay::NodeConfig cfg;
  OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{6}};
  net.settle(3_s);

  const auto h01 = net.node(0).link_health(0);  // NYC-WDC: only ISP B works
  EXPECT_TRUE(h01.up);
  EXPECT_EQ(h01.active_channel, 1);
  const auto h04 = net.node(0).link_health(1);  // NYC-CHI: only ISP A works
  EXPECT_TRUE(h04.up);
  EXPECT_EQ(h04.active_channel, 0);
}

// ---- Loopback and local delivery ------------------------------------------------

TEST(Loopback, UnicastToClientOnSameNode) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{7});
  fx.overlay->settle(3_s);
  auto& a = fx.overlay->node(0).connect(1);
  auto& b = fx.overlay->node(0).connect(2);
  client::MeasuringSink sink{b};
  a.send(Destination::unicast(0, 2), make_payload(10), ServiceSpec{});
  sim.run_for(100_ms);
  EXPECT_EQ(sink.received(), 1u);
  EXPECT_LT(sink.latencies_ms().max(), 0.001);  // no network traversal
}

// ---- Global map -------------------------------------------------------------------

TEST(GlobalMap, AnyPointToAnyPointWithin150ms) {
  // §II-A: "about 150ms is sufficient to reach nearly any point on the globe
  // from any other point."
  const auto map = topo::global_sites();
  const topo::Graph g = topo::overlay_graph(map);
  for (topo::NodeIndex a = 0; a < g.num_nodes(); ++a) {
    for (topo::NodeIndex b = static_cast<topo::NodeIndex>(a + 1); b < g.num_nodes(); ++b) {
      const auto p = topo::shortest_path(g, a, b);
      ASSERT_TRUE(p.has_value()) << a << "->" << b;
      EXPECT_LT(topo::path_cost(g, *p), 150.0)
          << map.cities[a].name << "->" << map.cities[b].name;
    }
  }
}

TEST(GlobalMap, EndToEndTrafficAcrossTheGlobe) {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{8}};
  const auto map = topo::global_sites();
  const auto u = topo::build_dual_isp(inet, map, topo::DualIspOptions{});
  overlay::NodeConfig cfg;
  OverlayNetwork net{sim, inet, map, u, cfg, sim::Rng{9}};
  net.settle(4_s);

  // SYD (8) -> LON (3): roughly the antipodal worst case in the map.
  auto& src = net.node(8).connect(1);
  auto& dst = net.node(3).connect(2);
  client::MeasuringSink sink{dst};
  ServiceSpec spec;
  spec.link_protocol = LinkProtocol::kReliable;
  for (int i = 0; i < 10; ++i) src.send(Destination::unicast(3, 2), make_payload(500), spec);
  sim.run_for(2_s);
  EXPECT_EQ(sink.received(), 10u);
  EXPECT_LT(sink.latencies_ms().max(), 150.0);
}

// ---- Control-plane robustness -----------------------------------------------------

TEST(ControlPlane, LsaRefreshRepairsLostFloods) {
  // Even if a flood copy is lost, the periodic state refresh reconverges
  // the topology databases.
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(8), gopts, sim::Rng{10});
  // Horrible control-plane conditions: 30% loss on every fiber.
  for (const auto l : fx.fiber) {
    const auto [a, b] = fx.internet->link_endpoints(l);
    fx.internet->link_dir(l, a).set_loss_model(net::make_bernoulli(0.3));
    fx.internet->link_dir(l, b).set_loss_model(net::make_bernoulli(0.3));
  }
  fx.overlay->settle(10_s);
  // Every node's database must have heard from every origin.
  for (NodeId n = 0; n < fx.overlay->size(); ++n) {
    for (NodeId origin = 0; origin < fx.overlay->size(); ++origin) {
      EXPECT_GT(fx.overlay->node(n).topology().stored_seq(origin), 0u)
          << "node " << n << " never heard LSA from " << origin;
    }
  }
}

TEST(ControlPlane, MeasuredLatencyConvergesToFiber) {
  Simulator sim;
  ChainOptions opts;
  opts.n_nodes = 3;
  opts.hop_latency = 15_ms;
  auto fx = build_chain(sim, opts, sim::Rng{11});
  fx.overlay->settle(5_s);
  // Node 2's view of link 0 (between nodes 0 and 1) comes entirely from
  // flooded LSAs and must reflect the measured ~15 ms one-way latency.
  const double cost = fx.overlay->node(2).topology().link_cost(0);
  EXPECT_NEAR(cost, 15.0, 2.0);
}


// ---- Anycast exactly-once and overlay TTL ----------------------------------------

TEST(AnycastSemantics, ExactlyOneClientEvenWithMultipleJoinedOnNode) {
  Simulator sim;
  GraphOptions gopts;
  auto fx = build_graph_fixture(sim, circulant_topology(6), gopts, sim::Rng{70});
  fx.overlay->settle(3_s);
  constexpr GroupId kG = 31;
  auto& c1 = fx.overlay->node(2).connect(10);
  auto& c2 = fx.overlay->node(2).connect(11);  // same node, also joined
  c1.join(kG);
  c2.join(kG);
  client::MeasuringSink s1{c1}, s2{c2};
  sim.run_for(2_s);
  auto& src = fx.overlay->node(0).connect(9);
  for (int i = 0; i < 5; ++i) {
    src.send(Destination::anycast(kG), make_payload(10), ServiceSpec{});
  }
  sim.run_for(1_s);
  EXPECT_EQ(s1.received() + s2.received(), 5u);  // exactly one member each
}

TEST(OverlayTtl, HopCountRecordedOnDelivery) {
  Simulator sim;
  ChainOptions copts;
  copts.n_nodes = 5;
  auto fx = build_chain(sim, copts, sim::Rng{71});
  fx.overlay->settle(3_s);
  auto& src = fx.overlay->node(0).connect(1);
  auto& dst = fx.overlay->node(4).connect(2);
  std::uint8_t hops = 0;
  dst.set_handler([&](const Message& m, Duration) { hops = m.hdr.hops; });
  ServiceSpec spec;
  spec.scheme = RouteScheme::kDissemination;
  spec.custom_mask = fx.chain_mask();
  src.send(Destination::unicast(4, 2), make_payload(10), spec);
  sim.run_for(1_s);
  EXPECT_EQ(hops, 4);  // four overlay links traversed
}

}  // namespace
}  // namespace son::overlay
