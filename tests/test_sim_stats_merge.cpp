// merge() on the stats accumulators must make parallel aggregation exact:
// splitting a stream into chunks, accumulating each separately, and merging
// has to equal single-stream accumulation (to fp rounding for the moments,
// exactly for counts/extrema). This is what lets the experiment runner fold
// per-trial metrics in trial order independent of which thread ran them.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace son::sim {
namespace {

std::vector<double> stream(std::uint64_t seed, int n) {
  Rng rng{seed};
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(rng.exponential(40.0) + rng.uniform() * 3.0);
  return v;
}

TEST(OnlineStatsMerge, EqualsSingleStream) {
  const auto values = stream(7, 1000);
  OnlineStats whole;
  for (const double v : values) whole.add(v);

  // Split into 3 uneven chunks, accumulate separately, merge.
  OnlineStats a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 100 ? a : i < 700 ? b : c).add(values[i]);
  }
  OnlineStats merged = a;
  merged.merge(b);
  merged.merge(c);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * whole.mean());
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9 * whole.variance());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9);
}

TEST(OnlineStatsMerge, EmptyIsIdentity) {
  OnlineStats empty;
  OnlineStats s;
  s.add(2.0);
  s.add(8.0);

  OnlineStats right = s;
  right.merge(empty);  // s ⊕ ∅ = s
  EXPECT_EQ(right.count(), 2u);
  EXPECT_DOUBLE_EQ(right.mean(), 5.0);

  OnlineStats left = empty;
  left.merge(s);  // ∅ ⊕ s = s
  EXPECT_EQ(left.count(), 2u);
  EXPECT_DOUBLE_EQ(left.mean(), 5.0);
  EXPECT_DOUBLE_EQ(left.min(), 2.0);
  EXPECT_DOUBLE_EQ(left.max(), 8.0);

  OnlineStats both;
  both.merge(empty);  // ∅ ⊕ ∅ = ∅
  EXPECT_EQ(both.count(), 0u);
  EXPECT_DOUBLE_EQ(both.mean(), 0.0);
}

TEST(OnlineStatsMerge, SingletonChunksMatchSequentialAdds) {
  // Degenerate parallelism: every chunk holds one value.
  const auto values = stream(11, 64);
  OnlineStats whole;
  OnlineStats merged;
  for (const double v : values) {
    whole.add(v);
    OnlineStats one;
    one.add(v);
    merged.merge(one);
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * whole.mean());
  EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-9 * whole.stddev());
}

TEST(SampleSetMerge, QuantilesEqualSingleStream) {
  const auto values = stream(3, 500);
  SampleSet whole;
  SampleSet a, b;
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.add(values[i]);
    (i % 2 ? a : b).add(values[i]);
  }
  SampleSet merged = a;
  merged.merge(b);

  EXPECT_EQ(merged.size(), whole.size());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
}

TEST(SampleSetMerge, EmptyCases) {
  SampleSet s;
  s.add(1.0);
  SampleSet empty;
  s.merge(empty);
  EXPECT_EQ(s.size(), 1u);

  SampleSet target;
  target.merge(s);
  EXPECT_EQ(target.size(), 1u);
  EXPECT_DOUBLE_EQ(target.quantile(0.5), 1.0);
}

TEST(HistogramMerge, CountsAdd) {
  Histogram whole{0.0, 100.0, 10};
  Histogram a{0.0, 100.0, 10};
  Histogram b{0.0, 100.0, 10};
  const auto values = stream(5, 300);
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.add(values[i]);
    (i % 3 == 0 ? a : b).add(values[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), whole.total());
  ASSERT_EQ(a.bins(), whole.bins());
  for (std::size_t bin = 0; bin < whole.bins(); ++bin) {
    EXPECT_EQ(a.bin_count(bin), whole.bin_count(bin)) << "bin " << bin;
  }
}

#ifndef NDEBUG
TEST(HistogramMergeDeathTest, GeometryMismatchDies) {
  Histogram a{0.0, 100.0, 10};
  Histogram b{0.0, 50.0, 10};
  EXPECT_DEATH(a.merge(b), "");
}
#endif

}  // namespace
}  // namespace son::sim
