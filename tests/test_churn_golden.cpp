// Golden-run determinism under churn: a sharded continental deployment with
// random crash-recover churn, membership eviction and overlay client flows
// must be bit-identical across worker counts. Churn events go through the
// kernel's control sim (round-barrier execution), and the whole event list
// is materialized at script time from a dedicated Rng, so the schedule is a
// pure function of (config, seed) — this test pins both properties.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>

#include "net/internet.hpp"
#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "overlay/churn.hpp"
#include "overlay/sharded.hpp"
#include "sim/shard.hpp"
#include "topo/backbones.hpp"

namespace son {
namespace {

using namespace son::sim::literals;

struct ShardedChurnResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t origin_evictions = 0;
  std::uint64_t peer_restarts_seen = 0;
  std::uint64_t stale_incarnation_drops = 0;
  std::size_t cycles_scheduled = 0;
  std::uint64_t delivery_hash = 0;  // per-node FNV hashes folded in node order
  std::uint64_t cross_shard_pushes = 0;
  std::uint64_t kernel_rounds = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counter_entries;
  std::vector<obs::EventRecord> trace;
};

/// The full churn stack, sharded: continental map, one partition per city,
/// membership timeouts armed, cross-country flows, and Poisson crash-recover
/// churn whose outages outlast dead_origin_timeout (so eviction + rejoin
/// actually fire). `workers` must be a pure wall-clock knob.
ShardedChurnResult run_churn_scenario(unsigned workers) {
  obs::Recorder rec{16, 1 << 12, /*system_rings=*/12};
  rec.set_sample_all(true);
  obs::ScopedRecorder rscope{rec};
  obs::CounterRegistry reg;
  obs::ScopedCounterRegistry cscope{reg};

  overlay::ShardedMapOptions opts;
  opts.workers = workers;
  opts.net.convergence_delay = sim::Duration::seconds(1);
  opts.node.dead_origin_timeout = 2500_ms;
  auto fx = overlay::build_sharded_map(topo::continental_us(), opts, 0xC41A);

  ShardedChurnResult r;
  const std::size_t n = fx.underlay.hosts.size();
  std::vector<std::uint64_t> hash(n, 1469598103934665603ULL);
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  // Each delivery handler runs on its destination's partition and folds into
  // that node's accumulator; the fold below runs after the kernel stops.
  for (std::size_t i = 0; i < n; ++i) {
    auto& ep = fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(200);
    ep.set_handler([&, i](const overlay::Message& m, sim::Duration lat) {
      mix(hash[i], m.hdr.origin_id);
      mix(hash[i], static_cast<std::uint64_t>(lat.ns()));
      ++hash[i];  // distinguish identical (id, lat) repeats
    });
  }

  fx.settle(3_s);
  const sim::TimePoint t0 = fx.kernel->now();

  // Six cross-country flows, each ticking on its source node's partition.
  // Sources and sinks are churned like everyone else (node 0 is spared so
  // at least one flow runs end to end throughout).
  struct ChurnFlow {
    overlay::ClientEndpoint& src;
    sim::Simulator& sim;
    overlay::Destination dest;
    overlay::ServiceSpec spec;
    sim::TimePoint stop;
    void tick() {
      if (sim.now() >= stop) return;
      (void)src.send(dest, overlay::make_payload(300), spec);
      sim.schedule(sim::Duration::milliseconds(7), [this]() { tick(); });
    }
  };
  std::vector<std::unique_ptr<ChurnFlow>> flows;
  for (std::size_t i = 0; i < 6; ++i) {
    auto& sim = fx.node_sim(static_cast<overlay::NodeId>(i));
    const auto dst = static_cast<overlay::NodeId>((i + n / 2) % n);
    overlay::ServiceSpec spec;
    spec.link_protocol = (i % 2 == 0) ? overlay::LinkProtocol::kITPriority
                                      : overlay::LinkProtocol::kBestEffort;
    flows.push_back(std::make_unique<ChurnFlow>(ChurnFlow{
        fx.overlay->node(static_cast<overlay::NodeId>(i)).connect(100), sim,
        overlay::Destination::unicast(dst, 200), spec, t0 + 4_s}));
    sim.schedule_at(t0 + sim::Duration::microseconds(173 * (i + 1)),
                    [f = flows.back().get()]() { f->tick(); });
  }

  overlay::ChurnScript script{*fx.overlay};
  overlay::ChurnScript::RandomChurnConfig ccfg;
  ccfg.from = t0 + 500_ms;
  ccfg.until = t0 + 4_s;
  ccfg.events_per_sec = 1.0;
  ccfg.down_for = 3_s;  // outlasts dead_origin_timeout: evictions fire
  ccfg.seed = 77;
  ccfg.spare = 0;
  r.cycles_scheduled = script.random_churn(ccfg);

  fx.kernel->run_until(t0 + 6_s);

  std::uint64_t folded = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) mix(folded, hash[i]);
  r.delivery_hash = folded;
  for (overlay::NodeId i = 0; i < static_cast<overlay::NodeId>(n); ++i) {
    const auto& s = fx.overlay->node(i).stats();
    r.sent += s.originated;
    r.delivered += s.delivered_local;
    r.origin_evictions += s.origin_evictions;
    r.peer_restarts_seen += s.peer_restarts_seen;
    r.stale_incarnation_drops += s.stale_incarnation_drops;
  }
  for (std::uint32_t p = 0; p < 12; ++p) {
    for (std::uint32_t q = 0; q < 12; ++q) {
      if (const sim::ShardChannel* ch = fx.kernel->channel(p, q)) {
        r.cross_shard_pushes += ch->total_pushed();
      }
    }
  }
  r.kernel_rounds = fx.kernel->rounds();
  r.counter_entries = reg.entries();
  r.trace = rec.merged();
  return r;
}

TEST(ChurnGoldenRun, ShardedOneWorkerEqualsFour) {
  const ShardedChurnResult one = run_churn_scenario(1);
  const ShardedChurnResult four = run_churn_scenario(4);

  // The scenario is real: traffic flowed, churn actually crashed and
  // recovered nodes, silence was detected, state was evicted and rejoins
  // were observed at fresh incarnations.
  EXPECT_GT(one.sent, 500u);
  EXPECT_GT(one.delivered, 0u);
  EXPECT_GT(one.cycles_scheduled, 0u);
  EXPECT_GT(one.origin_evictions, 0u);
  EXPECT_GT(one.peer_restarts_seen, 0u);
  EXPECT_GT(one.cross_shard_pushes, 0u);
  EXPECT_FALSE(one.trace.empty());

  // The contract: bit-identical churn schedule, deliveries, membership
  // verdicts, counters and merged traces, whatever the worker count.
  EXPECT_EQ(four.cycles_scheduled, one.cycles_scheduled);
  EXPECT_EQ(four.sent, one.sent);
  EXPECT_EQ(four.delivered, one.delivered);
  EXPECT_EQ(four.origin_evictions, one.origin_evictions);
  EXPECT_EQ(four.peer_restarts_seen, one.peer_restarts_seen);
  EXPECT_EQ(four.stale_incarnation_drops, one.stale_incarnation_drops);
  EXPECT_EQ(four.delivery_hash, one.delivery_hash);
  EXPECT_EQ(four.cross_shard_pushes, one.cross_shard_pushes);
  EXPECT_EQ(four.kernel_rounds, one.kernel_rounds);
  EXPECT_EQ(four.counter_entries, one.counter_entries);
  ASSERT_EQ(four.trace.size(), one.trace.size());
  EXPECT_EQ(std::memcmp(four.trace.data(), one.trace.data(),
                        one.trace.size() * sizeof(obs::EventRecord)),
            0);
}

}  // namespace
}  // namespace son
