#include "net/loss_model.hpp"

#include <gtest/gtest.h>

namespace son::net {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::TimePoint;

TEST(BernoulliLoss, MatchesRate) {
  sim::Rng rng{1};
  BernoulliLoss loss{0.2};
  int lost = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) lost += loss.lose(TimePoint::zero(), rng);
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.01);
  EXPECT_DOUBLE_EQ(loss.average_loss_rate(), 0.2);
}

TEST(NoLoss, NeverLoses) {
  sim::Rng rng{2};
  NoLoss loss;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.lose(TimePoint::zero(), rng));
  EXPECT_DOUBLE_EQ(loss.average_loss_rate(), 0.0);
}

TEST(GilbertElliott, AverageRateFormula) {
  GilbertElliottLoss::Params p;
  p.mean_good_time = 9_s;
  p.mean_bad_time = 1_s;
  p.loss_good = 0.0;
  p.loss_bad = 0.5;
  GilbertElliottLoss ge{p, sim::Rng{3}};
  EXPECT_NEAR(ge.average_loss_rate(), 0.05, 1e-12);
}

TEST(GilbertElliott, EmpiricalRateMatchesFormula) {
  GilbertElliottLoss::Params p;
  p.mean_good_time = 900_ms;
  p.mean_bad_time = 100_ms;
  p.loss_good = 0.001;
  p.loss_bad = 0.4;
  GilbertElliottLoss ge{p, sim::Rng{4}};
  sim::Rng rng{5};
  int lost = 0;
  const int n = 200000;
  // One query per 1 ms of simulated time.
  for (int i = 0; i < n; ++i) {
    lost += ge.lose(TimePoint::zero() + Duration::milliseconds(i), rng);
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, ge.average_loss_rate(), 0.01);
}

TEST(GilbertElliott, LossIsBursty) {
  // Consecutive (1 ms apart) packets should be lost together far more often
  // than independent losses at the same average rate would be.
  GilbertElliottLoss::Params p;
  p.mean_good_time = 2_s;
  p.mean_bad_time = 60_ms;
  p.loss_good = 0.0;
  p.loss_bad = 0.9;
  GilbertElliottLoss ge{p, sim::Rng{6}};
  sim::Rng rng{7};
  const int n = 500000;
  int lost = 0, pair_lost = 0;
  bool prev = false;
  for (int i = 0; i < n; ++i) {
    const bool l = ge.lose(TimePoint::zero() + Duration::milliseconds(i), rng);
    lost += l;
    pair_lost += (l && prev);
    prev = l;
  }
  const double rate = static_cast<double>(lost) / n;
  const double pair_rate = static_cast<double>(pair_lost) / n;
  // Independent losses: P(two in a row) == rate^2. Bursty: far larger.
  EXPECT_GT(pair_rate, 10 * rate * rate);
}

TEST(GilbertElliott, StateAdvancesLazily) {
  GilbertElliottLoss::Params p;
  p.mean_good_time = 10_ms;
  p.mean_bad_time = 10_ms;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  GilbertElliottLoss ge{p, sim::Rng{8}};
  // Sampling only at sparse times must still flip states (no hang /
  // correct catch-up across many sojourns).
  int bad_seen = 0;
  for (int i = 0; i < 100; ++i) {
    bad_seen += ge.in_bad_state(TimePoint::zero() + Duration::seconds(i));
  }
  EXPECT_GT(bad_seen, 20);
  EXPECT_LT(bad_seen, 80);
}

TEST(GilbertElliott, SpacedProbesDecorrelate) {
  // Probes spaced far beyond the bad-state sojourn should rarely both fail:
  // the mechanism NM-Strikes spacing exploits.
  GilbertElliottLoss::Params p;
  p.mean_good_time = 1_s;
  p.mean_bad_time = 40_ms;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  GilbertElliottLoss ge{p, sim::Rng{9}};
  sim::Rng rng{10};
  int both_close = 0, both_far = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const TimePoint base = TimePoint::zero() + Duration::milliseconds(i * 500);
    const bool a = ge.lose(base, rng);
    const bool close_b = ge.lose(base + 2_ms, rng);
    const bool far_b = ge.lose(base + 200_ms, rng);
    both_close += (a && close_b);
    both_far += (a && far_b);
  }
  EXPECT_GT(both_close, 3 * std::max(both_far, 1));
}

TEST(Factories, ProduceWorkingModels) {
  sim::Rng rng{11};
  auto none = make_no_loss();
  auto bern = make_bernoulli(1.0);
  EXPECT_FALSE(none->lose(TimePoint::zero(), rng));
  EXPECT_TRUE(bern->lose(TimePoint::zero(), rng));
  auto ge = make_gilbert_elliott({}, sim::Rng{12});
  EXPECT_GT(ge->average_loss_rate(), 0.0);
}

}  // namespace
}  // namespace son::net
