// Cross-traffic congestion and the overlay's reaction to it — the paper's
// contention motivation made concrete: the overlay provides "predictable
// service" over a contended Internet by measuring and routing around
// congestion it did not cause.
#include <gtest/gtest.h>

#include "client/traffic.hpp"
#include "net/cross_traffic.hpp"
#include "overlay/network.hpp"

namespace son {
namespace {

using namespace son::sim::literals;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

TEST(CrossTraffic, SaturatesAndDropsAtTheLink) {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{1}};
  const auto isp = inet.add_isp("one");
  const auto r1 = inet.add_router(isp, "r1");
  const auto r2 = inet.add_router(isp, "r2");
  net::LinkConfig thin;
  thin.prop_delay = 5_ms;
  thin.bandwidth_bps = 10e6;
  thin.max_queue_delay = 20_ms;
  const auto link = inet.add_link(r1, r2, thin);

  net::CrossTraffic::Options opts;
  opts.link = link;
  opts.from = r1;
  opts.rate_bps = 20e6;  // 2x the link
  opts.start = TimePoint::zero();
  opts.stop = TimePoint::zero() + 5_s;
  net::CrossTraffic bg{sim, inet, opts, sim::Rng{2}};
  sim.run_for(6_s);

  EXPECT_GT(bg.sent(), 9000u);  // ~10.4 kpps offered
  const double through = static_cast<double>(bg.received()) / static_cast<double>(bg.sent());
  EXPECT_GT(through, 0.40);
  EXPECT_LT(through, 0.60);  // ~half survives a 2x-offered link
}

TEST(CrossTraffic, BelowCapacityIsHarmless) {
  Simulator sim;
  net::Internet inet{sim, sim::Rng{3}};
  const auto isp = inet.add_isp("one");
  const auto r1 = inet.add_router(isp, "r1");
  const auto r2 = inet.add_router(isp, "r2");
  net::LinkConfig thin;
  thin.prop_delay = 5_ms;
  thin.bandwidth_bps = 10e6;
  const auto link = inet.add_link(r1, r2, thin);
  net::CrossTraffic::Options opts;
  opts.link = link;
  opts.from = r1;
  opts.rate_bps = 3e6;
  opts.start = TimePoint::zero();
  opts.stop = TimePoint::zero() + 5_s;
  net::CrossTraffic bg{sim, inet, opts, sim::Rng{4}};
  sim.run_for(6_s);
  EXPECT_EQ(bg.received(), bg.sent());
}

TEST(CongestionReroute, OverlayRoutesAroundContendedLink) {
  // Triangle overlay: direct 0-1 fiber is thin (25 Mbps); detour 0-2-1 is
  // fat but longer. At t=5 s third-party cross-traffic floods the direct
  // fiber at 2x capacity. The overlay's hellos see the queue drops as loss,
  // the loss-aware cost metric kicks in, and the flow moves to the detour —
  // predictable service over a contended Internet.
  Simulator sim;
  net::Internet inet{sim, sim::Rng{5}};
  const auto isp = inet.add_isp("one");
  const auto r0 = inet.add_router(isp, "r0");
  const auto r1 = inet.add_router(isp, "r1");
  const auto r2 = inet.add_router(isp, "r2");
  net::LinkConfig thin;
  thin.prop_delay = 10_ms;
  thin.bandwidth_bps = 25e6;
  thin.max_queue_delay = 20_ms;
  const auto direct = inet.add_link(r0, r1, thin);
  net::LinkConfig fat;
  fat.prop_delay = 8_ms;
  fat.bandwidth_bps = 1e9;
  inet.add_link(r0, r2, fat);
  inet.add_link(r2, r1, fat);

  std::vector<net::HostId> hosts;
  net::LinkConfig access;
  access.prop_delay = sim::Duration::microseconds(50);
  access.bandwidth_bps = 1e9;
  for (const auto r : {r0, r1, r2}) {
    hosts.push_back(inet.add_host("h" + std::to_string(r)));
    inet.attach_host(hosts.back(), r, access);
  }
  topo::Graph g(3);
  g.add_edge(0, 1, 10.0);  // bit 0: rides the thin fiber
  g.add_edge(0, 2, 8.0);
  g.add_edge(2, 1, 8.0);
  overlay::NodeConfig cfg;  // loss-aware routing on (the default)
  overlay::OverlayNetwork net{sim, inet, g, hosts, cfg, sim::Rng{6}};
  net.settle(3_s);

  auto& src = net.node(0).connect(1);
  auto& dst = net.node(1).connect(2);
  client::MeasuringSink sink{dst};
  std::uint64_t received_late_phase = 0;
  sink.on_message([&](const overlay::Message& m, Duration) {
    if (m.hdr.origin_time >= TimePoint::zero() + 12_s) ++received_late_phase;
  });
  overlay::ServiceSpec spec;  // best effort: only routing protects it
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(1, 2), spec, 500, 400,
                            sim.now(), sim.now() + 27_s}};

  // Background flood on the direct fiber from t=5s to t=30s.
  net::CrossTraffic::Options xopts;
  xopts.link = direct;
  xopts.from = r0;
  xopts.rate_bps = 250e6;
  xopts.start = TimePoint::zero() + 5_s;
  xopts.stop = TimePoint::zero() + 30_s;
  net::CrossTraffic bg{sim, inet, xopts, sim::Rng{7}};

  sim.run_for(30_s);

  // The overlay moved off the congested link...
  EXPECT_NE(net.node(0).router().next_hop(1), 0);
  // ...and service in the steady (post-reroute) phase is clean: messages
  // originated from t=12 s on (sent 500/s until t=30 s) all arrive, with no
  // queueing inflation (the detour is 16 ms + processing).
  const std::uint64_t late_sent = 500 * 18;
  EXPECT_GT(static_cast<double>(received_late_phase) / static_cast<double>(late_sent), 0.995);
  EXPECT_LT(sink.latencies_ms().quantile(0.99), 20.0);
}

TEST(CongestionReroute, QueueInflationAloneAlsoTriggersReroute) {
  // Identical scenario with the loss-aware metric DISABLED. Congestion is
  // visible to the hellos TWICE — as loss (queue drops) and as latency
  // (queueing delay inflates RTT) — so even latency-only routing escapes
  // the contended link while the flood lasts, and returns to the direct
  // link once the congestion clears and the measured RTT decays. (The
  // ablation that isolates the loss term is ABL-COST in bench_ablations,
  // where loss is injected WITHOUT queueing.)
  Simulator sim;
  net::Internet inet{sim, sim::Rng{8}};
  const auto isp = inet.add_isp("one");
  const auto r0 = inet.add_router(isp, "r0");
  const auto r1 = inet.add_router(isp, "r1");
  const auto r2 = inet.add_router(isp, "r2");
  net::LinkConfig thin;
  thin.prop_delay = 10_ms;
  thin.bandwidth_bps = 25e6;
  thin.max_queue_delay = 20_ms;
  const auto direct = inet.add_link(r0, r1, thin);
  net::LinkConfig fat;
  fat.prop_delay = 8_ms;
  fat.bandwidth_bps = 1e9;
  inet.add_link(r0, r2, fat);
  inet.add_link(r2, r1, fat);
  std::vector<net::HostId> hosts;
  net::LinkConfig access;
  access.prop_delay = sim::Duration::microseconds(50);
  access.bandwidth_bps = 1e9;
  for (const auto r : {r0, r1, r2}) {
    hosts.push_back(inet.add_host("h" + std::to_string(r)));
    inet.attach_host(hosts.back(), r, access);
  }
  topo::Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 8.0);
  g.add_edge(2, 1, 8.0);
  overlay::NodeConfig cfg;
  cfg.loss_aware_routing = false;  // ablation
  overlay::OverlayNetwork net{sim, inet, g, hosts, cfg, sim::Rng{9}};
  net.settle(3_s);

  auto& src = net.node(0).connect(1);
  auto& dst = net.node(1).connect(2);
  client::MeasuringSink sink{dst};
  std::uint64_t received_late_phase = 0;
  sink.on_message([&](const overlay::Message& m, Duration) {
    if (m.hdr.origin_time >= TimePoint::zero() + 12_s) ++received_late_phase;
  });
  overlay::ServiceSpec spec;
  client::CbrSender sender{sim, src,
                           {overlay::Destination::unicast(1, 2), spec, 500, 400,
                            sim.now(), sim.now() + 27_s}};
  net::CrossTraffic::Options xopts;
  xopts.link = direct;
  xopts.from = r0;
  xopts.rate_bps = 250e6;
  xopts.start = TimePoint::zero() + 5_s;
  xopts.stop = TimePoint::zero() + 30_s;
  net::CrossTraffic bg{sim, inet, xopts, sim::Rng{10}};

  // Mid-flood: the RTT-inflated direct link must have been abandoned.
  overlay::LinkBit mid_flood_hop = 0;
  sim.schedule_at(TimePoint::zero() + 20_s,
                  [&]() { mid_flood_hop = net.node(0).router().next_hop(1); });
  sim.run_for(30_s);

  EXPECT_NE(mid_flood_hop, 0);  // detoured while congested
  // After the flood ends (t=30 s) the hello RTT decays and the flow returns
  // to the direct link.
  EXPECT_EQ(net.node(0).router().next_hop(1), 0);
  // Service stayed clean throughout the steady phase.
  const std::uint64_t late_sent = 500 * 18;
  EXPECT_GT(static_cast<double>(received_late_phase) / static_cast<double>(late_sent), 0.99);
}

}  // namespace
}  // namespace son
